"""Parity: KV-cached incremental decoding must reproduce full-sequence forwards.

The contract (and the point of the KV-cache): the logits produced while
decoding step by step are the same ones a full forward over the final token
sequence would produce — position by position, request by request, regardless
of how requests were batched or padded.  Tolerance is atol 1e-9; Tender's
integer pipeline is exact, the FP baseline differs only by BLAS blocking
noise (~1e-15).

The one scoped exception is Tender "all" (``quantize_attention=True``): its
attention operands are quantized with *dynamic* per-head statistics, which a
decode step necessarily derives from one query row while the full forward
derives them from the whole sequence — decoding is a (deliberately) different
quantization schedule there, exactly the serving-time regime the paper's
runtime requantization targets.  What must still hold for it — and is tested
below — is batching isolation: a request's logits never depend on what it was
padded or batched with.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TenderConfig, TenderQuantizer
from repro.models import TransformerRunner
from repro.serve import GenerationConfig, GenerationEngine, KVCache

ATOL = 1e-9
MAX_NEW_TOKENS = 6


def tender_runner(weights, calibration, implicit: bool) -> TransformerRunner:
    config = TenderConfig(bits=8, num_groups=8, row_chunk_size=8)
    return TenderQuantizer(config, implicit=implicit).quantize(weights, calibration)


@pytest.fixture(scope="module")
def runners(outlier_weights, calibration):
    return {
        "float": TransformerRunner(outlier_weights),
        "tender-implicit": tender_runner(outlier_weights, calibration, implicit=True),
        "tender-explicit": tender_runner(outlier_weights, calibration, implicit=False),
    }


@pytest.fixture(scope="module")
def ragged_prompts(corpus_splits):
    train_tokens, _ = corpus_splits
    # Lengths straddle the Tender row-chunk boundary (chunk size 8).
    return [train_tokens[:5], train_tokens[10:19], train_tokens[30:44]]


@pytest.mark.parametrize("name", ["float", "tender-implicit", "tender-explicit"])
class TestDecodeMatchesFullForward:
    def test_stepwise_logits_match(self, name, runners, ragged_prompts):
        runner = runners[name]
        engine = GenerationEngine(runner)
        result = engine.generate(ragged_prompts, GenerationConfig(max_new_tokens=MAX_NEW_TOKENS))
        assert result.num_steps == MAX_NEW_TOKENS
        for row, prompt in enumerate(ragged_prompts):
            reference = runner.logits(result.sequences[row][None, :])[0]
            for step in range(result.num_steps):
                position = len(prompt) - 1 + step
                np.testing.assert_allclose(
                    result.step_logits[row, step], reference[position], rtol=0.0, atol=ATOL
                )

    def test_greedy_tokens_match_full_forward(self, name, runners, ragged_prompts):
        runner = runners[name]
        result = GenerationEngine(runner).generate(
            ragged_prompts, GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)
        )
        for row, prompt in enumerate(ragged_prompts):
            reference = runner.logits(result.sequences[row][None, :])[0]
            for step in range(result.num_steps):
                expected = int(np.argmax(reference[len(prompt) - 1 + step]))
                assert int(result.generated[row][step]) == expected

    def test_prefill_matches_full_forward(self, name, runners, ragged_prompts):
        runner = runners[name]
        lengths = np.array([len(p) for p in ragged_prompts])
        padded = np.zeros((len(ragged_prompts), int(lengths.max())), dtype=np.int64)
        for row, prompt in enumerate(ragged_prompts):
            padded[row, : len(prompt)] = prompt
        cache = KVCache.for_model(runner.config, len(ragged_prompts))
        logits = runner.prefill(padded, lengths, cache)
        for row, prompt in enumerate(ragged_prompts):
            reference = runner.logits(np.asarray(prompt)[None, :])[0, -1]
            np.testing.assert_allclose(logits[row], reference, rtol=0.0, atol=ATOL)
        np.testing.assert_array_equal(cache.lengths, lengths)

    def test_ragged_batching_is_isolation_safe(self, name, runners, ragged_prompts):
        """Each request's step logits are identical alone or in a ragged batch."""
        runner = runners[name]
        engine = GenerationEngine(runner)
        config = GenerationConfig(max_new_tokens=4)
        batched = engine.generate(ragged_prompts, config)
        for row, prompt in enumerate(ragged_prompts):
            alone = engine.generate([prompt], config)
            np.testing.assert_allclose(
                alone.step_logits[0], batched.step_logits[row], rtol=0.0, atol=ATOL
            )


class TestTokenByTokenPriming:
    def test_decode_step_without_prefill(self, runners, corpus_splits):
        """Feeding a prompt one decode_step at a time equals the full forward."""
        train_tokens, _ = corpus_splits
        prompt = train_tokens[50:59]
        for runner in runners.values():
            cache = KVCache.for_model(runner.config, 1, capacity=16)
            stepwise = [runner.decode_step(np.array([token]), cache) for token in prompt]
            reference = runner.logits(np.asarray(prompt)[None, :])[0]
            for position, logits in enumerate(stepwise):
                np.testing.assert_allclose(logits[0], reference[position], rtol=0.0, atol=ATOL)

    def test_decode_past_max_seq_len_rejected(self, runners, corpus_splits):
        from repro.errors import ConfigurationError

        train_tokens, _ = corpus_splits
        runner = runners["float"]
        cache = KVCache.for_model(runner.config, 1)
        cache.lengths[:] = runner.config.max_seq_len
        with pytest.raises(ConfigurationError):
            runner.decode_step(np.array([1]), cache)


class TestQuantizedAttentionIsolation:
    """Tender "all" (quantize_attention=True): batching must not leak.

    Dynamic attention quantization computes channel statistics from runtime
    operands, so padded garbage rows/slots would contaminate them unless the
    engine neutralises padding (duplicated query rows, zeroed K/V, duplicated
    probability rows).  These tests pin that neutralisation down.
    """

    @pytest.fixture(scope="class")
    def all_runners(self, outlier_weights, calibration):
        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=8, quantize_attention=True)
        return {
            implicit: TenderQuantizer(config, implicit=implicit).quantize(
                outlier_weights, calibration
            )
            for implicit in (True, False)
        }

    @pytest.mark.parametrize("implicit", [True, False])
    def test_ragged_batching_is_isolation_safe(self, implicit, all_runners, ragged_prompts):
        engine = GenerationEngine(all_runners[implicit])
        config = GenerationConfig(max_new_tokens=4)
        batched = engine.generate(ragged_prompts, config)
        for row, prompt in enumerate(ragged_prompts):
            alone = engine.generate([prompt], config)
            np.testing.assert_allclose(
                alone.step_logits[0], batched.step_logits[row], rtol=0.0, atol=1e-12
            )
            np.testing.assert_array_equal(alone.generated[0], batched.generated[row])

    def test_decode_is_a_per_step_quantization_schedule(self, all_runners, ragged_prompts):
        """Decode logits for Tender "all" legitimately differ from the full
        forward (per-step dynamic stats) but generation stays well-formed."""
        engine = GenerationEngine(all_runners[True])
        result = engine.generate(ragged_prompts, GenerationConfig(max_new_tokens=4))
        assert result.num_steps == 4
        assert np.isfinite(result.step_logits).all()


class TestContinuousSchedulerParity:
    """Per-request outputs under the continuous scheduler match solo runs.

    The acceptance bar for continuous batching: a request's output must be
    *bit-identical* to running it alone through ``generate()``, no matter
    how it was batched, staggered, evicted around, or which recycled slot it
    landed in.  Token sequences are bit-identical for every scheme.  Step
    logits are bit-identical for Tender's integer pipeline; the FP
    baseline's logits carry ~1e-15 BLAS row-blocking noise (batched decode
    stacks the active slots into one ``(batch, d_model)`` projection
    operand, and dgemm picks different micro-kernels for different row
    counts), which never flips a sampled token.
    """

    BUDGETS = [3, 7, 5, 6, 4, 8]
    ARRIVALS = [0.0, 0.0, 1.0, 3.0, 5.0, 8.0]

    def _trace_prompts(self, corpus_splits):
        train_tokens, _ = corpus_splits
        return [train_tokens[i * 12 : i * 12 + 4 + (i % 4) * 3] for i in range(6)]

    def _run_trace(self, runner, prompts, config):
        from repro.serve import Scheduler

        scheduler = Scheduler(runner, config, max_batch_size=2, block_size=8)
        for prompt, budget, arrival in zip(prompts, self.BUDGETS, self.ARRIVALS):
            scheduler.submit(prompt, max_new_tokens=budget, arrival_time=arrival)
        outputs = {output.request_id: output for output in scheduler.run()}
        assert scheduler.stats.peak_active <= 2  # slots really were reused
        return outputs

    @pytest.mark.parametrize("name", ["float", "tender-implicit", "tender-explicit"])
    def test_scheduled_outputs_match_solo_generate(self, name, runners, corpus_splits):
        runner = runners[name]
        prompts = self._trace_prompts(corpus_splits)
        outputs = self._run_trace(runner, prompts, GenerationConfig())
        engine = GenerationEngine(runner)
        for request_id, (prompt, budget) in enumerate(zip(prompts, self.BUDGETS)):
            alone = engine.generate([prompt], GenerationConfig(max_new_tokens=budget))
            np.testing.assert_array_equal(outputs[request_id].generated, alone.generated[0])
            np.testing.assert_array_equal(outputs[request_id].sequence, alone.sequences[0])
            if name.startswith("tender"):
                # Integer pipeline: logits are bit-identical under batching.
                np.testing.assert_array_equal(outputs[request_id].step_logits, alone.step_logits[0])
            else:
                np.testing.assert_allclose(
                    outputs[request_id].step_logits, alone.step_logits[0], rtol=0.0, atol=1e-12
                )

    def test_tender_all_bit_identical_under_scheduler(self, outlier_weights, calibration, corpus_splits):
        """Even dynamic attention quantization is batching-invariant."""
        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=8, quantize_attention=True)
        runner = TenderQuantizer(config).quantize(outlier_weights, calibration)
        prompts = self._trace_prompts(corpus_splits)
        outputs = self._run_trace(runner, prompts, GenerationConfig())
        engine = GenerationEngine(runner)
        for request_id, (prompt, budget) in enumerate(zip(prompts, self.BUDGETS)):
            alone = engine.generate([prompt], GenerationConfig(max_new_tokens=budget))
            np.testing.assert_array_equal(outputs[request_id].generated, alone.generated[0])
            np.testing.assert_array_equal(outputs[request_id].step_logits, alone.step_logits[0])

    def test_top_k_sampling_is_batching_invariant(self, runners, corpus_splits):
        """Per-request seeded generators make sampling scheduling-independent."""
        runner = runners["tender-implicit"]
        prompts = self._trace_prompts(corpus_splits)
        config = GenerationConfig(top_k=8, temperature=1.3, seed=11)
        outputs = self._run_trace(runner, prompts, config)
        engine = GenerationEngine(runner)
        for request_id, (prompt, budget) in enumerate(zip(prompts, self.BUDGETS)):
            alone = engine.generate(
                [prompt], GenerationConfig(max_new_tokens=budget, top_k=8, temperature=1.3, seed=11)
            )
            np.testing.assert_array_equal(outputs[request_id].generated, alone.generated[0])


class TestTenderChunkConsistency:
    def test_decoded_token_uses_position_chunk(self, outlier_weights, calibration, corpus_splits):
        """A decoded token's quantization chunk comes from its position.

        With chunk size 4, a prompt of 6 tokens followed by decoding must use
        chunk 1 parameters for the decoded token at position 6 — the same ones
        the full forward uses — even though the decode step's activation
        matrix has a single row (flat row index 0).
        """
        train_tokens, _ = corpus_splits
        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=4)
        runner = TenderQuantizer(config).quantize(outlier_weights, calibration)
        prompt = train_tokens[:6]
        result = GenerationEngine(runner).generate([prompt], GenerationConfig(max_new_tokens=5))
        reference = runner.logits(result.sequences[0][None, :])[0]
        for step in range(result.num_steps):
            np.testing.assert_allclose(
                result.step_logits[0, step], reference[len(prompt) - 1 + step], rtol=0.0, atol=ATOL
            )

    def test_batched_full_forward_is_position_consistent(
        self, outlier_weights, calibration, corpus_splits
    ):
        """Batched full forwards chunk by token position, not flat row index.

        A sequence's logits must be the same whether it is forwarded alone or
        stacked into a batch — historically row chunks were looked up by flat
        row index, which handed every sequence after the first the (clamped)
        last chunk's calibration parameters.
        """
        train_tokens, _ = corpus_splits
        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=4)
        runner = TenderQuantizer(config).quantize(outlier_weights, calibration)
        first, second = train_tokens[:12], train_tokens[20:32]
        batched = runner.logits(np.stack([first, second]))
        for row, tokens in enumerate((first, second)):
            solo = runner.logits(tokens[None, :])[0]
            np.testing.assert_allclose(batched[row], solo, rtol=0.0, atol=ATOL)
