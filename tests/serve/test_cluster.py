"""Tests of the fault-tolerant replica pool: chaos, recovery, degradation.

The anchor is the strongest guarantee the cluster layer makes: a replica
kill, stall, or breaker trip may move a request across engines, but it must
never change what the request generates.  Recovery replays checkpoints
``(prompt, generated, RNG state)`` through the same deterministic replay
path preemption uses, so recovered outputs are bit-identical — tokens *and*
committed-position logits — to a fault-free run for Tender's integer
pipeline.  Around that sit the robustness mechanics: sticky rendezvous
routing, the circuit breaker, the zero-progress watchdog, and graceful
degradation under memory pressure or an exhausted retry budget.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import TenderConfig, TenderQuantizer
from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.models import TransformerRunner
from repro.serve import (
    AsyncEngine,
    FaultInjector,
    GenerationConfig,
    GenerationEngine,
    ReplicaPool,
    Request,
    Router,
)


@pytest.fixture()
def runner(tiny_weights):
    return TransformerRunner(tiny_weights)


@pytest.fixture(scope="module")
def template_prompts(corpus_splits):
    """Eight prompts over two shared 8-token templates (sticky-routable)."""
    train_tokens, _ = corpus_splits
    prompts = []
    for index in range(8):
        template = train_tokens[(index % 2) * 40 : (index % 2) * 40 + 8]
        suffix = train_tokens[120 + index * 6 : 120 + index * 6 + 2 + index % 3]
        prompts.append(np.concatenate([template, suffix]))
    return prompts


def tender_runner(weights, calibration, implicit):
    config = TenderConfig(bits=8, num_groups=8, row_chunk_size=8)
    return TenderQuantizer(config, implicit=implicit).quantize(weights, calibration)


@pytest.fixture(scope="module")
def parity_runners(outlier_weights, calibration):
    return {
        "tender-implicit": tender_runner(outlier_weights, calibration, implicit=True),
        "tender-explicit": tender_runner(outlier_weights, calibration, implicit=False),
    }


def pool_outputs(runner, prompts, *, injector=None, **kwargs):
    """Serve ``prompts`` through a fresh pool; outputs keyed by pool id."""
    pool = ReplicaPool(runner, fault_injector=injector, **kwargs)
    for prompt in prompts:
        pool.submit(prompt)
    outputs = {output.request_id: output for output in pool.run()}
    return outputs, pool


class TestRouter:
    def test_equal_templates_rank_identically(self, template_prompts):
        router = Router(num_replicas=4, template_window=8)
        assert router.rank(template_prompts[0]) == router.rank(template_prompts[2])
        assert router.place(template_prompts[0], [0, 1, 2, 3]) == router.place(
            template_prompts[2], [0, 1, 2, 3]
        )

    def test_failover_moves_only_the_dead_winner_traffic(self, template_prompts):
        router = Router(num_replicas=3, template_window=8)
        all_ids = [0, 1, 2]
        winner_a = router.place(template_prompts[0], all_ids)
        survivors = [rid for rid in all_ids if rid != winner_a]
        # Template A fails over to exactly its next-ranked replica.
        next_ranked = router.rank(template_prompts[0])[1]
        assert router.place(template_prompts[0], survivors) == next_ranked
        # Any template whose winner survived keeps its placement — failover
        # moves only the dead winner's traffic (no rehash storm).
        winner_b = router.place(template_prompts[1], all_ids)
        if winner_b != winner_a:
            assert router.place(template_prompts[1], survivors) == winner_b

    def test_no_healthy_replica_raises(self, template_prompts):
        router = Router(num_replicas=2)
        with pytest.raises(ResourceExhaustedError, match="no healthy replica"):
            router.place(template_prompts[0], [])

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="num_replicas"):
            Router(num_replicas=0)
        with pytest.raises(ConfigurationError, match="template_window"):
            Router(num_replicas=1, template_window=0)


class TestFaultInjector:
    def test_scripted_events_win_over_random_draws(self):
        injector = FaultInjector(seed=0, kill_rate=1.0, stall_at={3: 1})
        assert injector.draw(3, 1) == "stall"
        assert injector.draw(3, 0) == "kill"
        kinds = [event.kind for event in injector.events]
        assert kinds == ["stall", "kill"]

    def test_randomized_schedule_is_seed_deterministic(self):
        def schedule(seed):
            injector = FaultInjector(seed, kill_rate=0.3, stall_rate=0.3)
            return [injector.draw(i, r) for i in range(20) for r in range(3)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_max_kills_bounds_the_chaos(self):
        injector = FaultInjector(seed=0, kill_rate=1.0, max_kills=2)
        draws = [injector.draw(i, 0) for i in range(5)]
        assert draws.count("kill") == 2
        assert draws[2:] == [None, None, None]

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="kill_rate"):
            FaultInjector(kill_rate=1.5)
        with pytest.raises(ConfigurationError, match="stall_steps"):
            FaultInjector(stall_steps=0)


@pytest.mark.parametrize("name", ["tender-implicit", "tender-explicit"])
@pytest.mark.parametrize("prefix_cache", [True, False])
@pytest.mark.parametrize("preemption", [True, False])
class TestRecoveryParity:
    def test_recovered_outputs_are_bit_identical(
        self, name, prefix_cache, preemption, parity_runners, template_prompts
    ):
        """Seeded kills mid-trace change nothing a caller can observe.

        Tokens *and* committed-position logits must equal the fault-free
        pool run — recovery replays the checkpointed sampler state, it
        never re-samples.
        """
        runner = parity_runners[name]
        kwargs = dict(
            num_replicas=3,
            config=GenerationConfig(max_new_tokens=10),
            max_batch_size=2,
            block_size=4,
            prefix_cache=prefix_cache,
            preemption=preemption,
        )
        clean, _ = pool_outputs(runner, template_prompts, **kwargs)
        chaos, pool = pool_outputs(
            runner,
            template_prompts,
            injector=FaultInjector(seed=0, kill_at={2: 0, 5: 1}),
            **kwargs,
        )
        assert pool.cluster_stats.recoveries >= 1
        assert set(chaos) == set(clean)
        for request_id, output in clean.items():
            recovered = chaos[request_id]
            np.testing.assert_array_equal(recovered.generated, output.generated)
            np.testing.assert_array_equal(recovered.step_logits, output.step_logits)
            assert recovered.finish_reason == output.finish_reason


class TestRecoveryMechanics:
    def test_pool_ids_survive_recovery(self, runner, template_prompts):
        outputs, pool = pool_outputs(
            runner,
            template_prompts,
            injector=FaultInjector(seed=0, kill_at={2: 0}),
            num_replicas=3,
            config=GenerationConfig(max_new_tokens=6),
            max_batch_size=2,
            block_size=4,
        )
        assert pool.cluster_stats.recoveries >= 1
        assert sorted(outputs) == list(range(len(template_prompts)))

    def test_generated_tokens_survive_crash_rebuilds(self, runner, template_prompts):
        kwargs = dict(
            num_replicas=3,
            config=GenerationConfig(max_new_tokens=6),
            max_batch_size=2,
            block_size=4,
            breaker_cooldown=2,
        )
        _, clean_pool = pool_outputs(runner, template_prompts, **kwargs)
        _, chaos_pool = pool_outputs(
            runner,
            template_prompts,
            injector=FaultInjector(seed=0, kill_at={2: 0, 4: 1}),
            **kwargs,
        )
        # Retained counters: the chaos run's totals keep the pre-crash work
        # of rebuilt schedulers, so generated tokens are conserved and the
        # recovery recompute shows up as extra prefill rows.
        assert (
            chaos_pool.stats["generated_tokens"]
            == clean_pool.stats["generated_tokens"]
        )
        assert chaos_pool.stats["prefill_tokens"] >= clean_pool.stats["prefill_tokens"]

    def test_recovery_rides_prefix_hits_on_the_failover_replica(
        self, runner, template_prompts
    ):
        outputs, pool = pool_outputs(
            runner,
            template_prompts,
            injector=FaultInjector(seed=0, kill_at={3: 0}),
            num_replicas=3,
            config=GenerationConfig(max_new_tokens=8),
            max_batch_size=4,
            block_size=4,
        )
        assert pool.cluster_stats.recoveries >= 1
        recovered_hits = sum(output.prefix_hit_tokens for output in outputs.values())
        assert recovered_hits > 0

    def test_watchdog_moves_requests_off_a_stalled_replica(
        self, runner, template_prompts
    ):
        solo = GenerationEngine(runner).generate(
            list(template_prompts), GenerationConfig(max_new_tokens=6)
        )
        outputs, pool = pool_outputs(
            runner,
            template_prompts,
            injector=FaultInjector(seed=0, stall_at={1: 0}, stall_steps=10),
            num_replicas=2,
            config=GenerationConfig(max_new_tokens=6),
            max_batch_size=4,
            block_size=4,
            watchdog_patience=2,
            breaker_cooldown=2,
        )
        assert pool.cluster_stats.watchdog_trips >= 1
        assert pool.cluster_stats.stalled_iterations >= 1
        for request_id in range(len(template_prompts)):
            np.testing.assert_array_equal(
                outputs[request_id].generated, solo.generated[request_id]
            )


class TestCircuitBreaker:
    def test_killed_replica_cools_down_then_rejoins(self, runner, template_prompts):
        pool = ReplicaPool(
            runner,
            num_replicas=2,
            config=GenerationConfig(max_new_tokens=4),
            fault_injector=FaultInjector(seed=0, kill_at={1: 0}),
            max_batch_size=4,
            block_size=4,
            breaker_cooldown=2,
        )
        for prompt in template_prompts:
            pool.submit(prompt)
        crashed = pool.replicas[0].scheduler
        pool.step()
        pool.step()
        assert pool.healthy_ids() == [1]
        assert pool.cluster_stats.breaker_opens >= 1
        pool.run()
        # Past the cooldown the replica re-probes with a *fresh* engine.
        for _ in range(6):
            pool.step()
        assert 0 in pool.healthy_ids()
        assert pool.replicas[0].alive
        assert pool.replicas[0].scheduler is not crashed

    def test_unhealthy_replica_takes_no_new_traffic(self, runner, template_prompts):
        pool = ReplicaPool(
            runner,
            num_replicas=2,
            config=GenerationConfig(max_new_tokens=4),
            fault_injector=FaultInjector(seed=0, kill_at={0: 0}),
            max_batch_size=4,
            breaker_cooldown=50,
        )
        pool.submit(template_prompts[0])
        pool.step()
        assert pool.healthy_ids() == [1]
        pool_id = pool.submit(template_prompts[1])
        assert pool._placements[pool_id][0] == 1


class TestDegradation:
    def test_exhaustion_sheds_the_lowest_priority_waiting_request(
        self, runner, template_prompts
    ):
        pool = ReplicaPool(
            runner,
            num_replicas=1,
            config=GenerationConfig(max_new_tokens=5),
            fault_injector=FaultInjector(seed=0, exhaust_at={1: 0}),
            max_batch_size=1,
            block_size=4,
        )
        ids = [
            pool.submit(prompt, priority=priority)
            for prompt, priority in zip(template_prompts[:3], (0, 1, 5))
        ]
        outputs = {output.request_id: output for output in pool.run()}
        assert outputs[ids[2]].finish_reason == "degraded"
        assert len(outputs[ids[2]].generated) == 0
        assert outputs[ids[0]].finish_reason == "length"
        assert outputs[ids[1]].finish_reason == "length"
        assert pool.cluster_stats.degraded_requests == 1

    def test_exhausted_retry_budget_degrades_with_partial_tokens(
        self, runner, template_prompts
    ):
        outputs, pool = pool_outputs(
            runner,
            template_prompts[:4],
            injector=FaultInjector(seed=0, kill_at={2: 0}),
            num_replicas=2,
            config=GenerationConfig(max_new_tokens=6),
            max_batch_size=4,
            block_size=4,
            max_retries=0,
        )
        degraded = [o for o in outputs.values() if o.finish_reason == "degraded"]
        assert degraded
        assert pool.cluster_stats.recoveries == 0
        assert pool.cluster_stats.degraded_requests == len(degraded)
        # The checkpointed progress is returned, not discarded.
        assert any(len(output.generated) > 0 for output in degraded)

    def test_no_surviving_replica_degrades_in_flight_requests(
        self, runner, template_prompts
    ):
        outputs, pool = pool_outputs(
            runner,
            template_prompts[:2],
            injector=FaultInjector(seed=0, kill_at={1: 0}),
            num_replicas=1,
            config=GenerationConfig(max_new_tokens=8),
            max_batch_size=2,
            breaker_cooldown=50,
        )
        assert outputs
        assert all(o.finish_reason == "degraded" for o in outputs.values())
        assert pool.cluster_stats.degraded_requests == len(outputs)


class TestPoolSurface:
    def test_request_object_with_keywords_is_rejected(self, runner, template_prompts):
        pool = ReplicaPool(runner, num_replicas=2)
        request = Request(request_id=0, prompt=template_prompts[0])
        with pytest.raises(ConfigurationError, match="not as submit"):
            pool.submit(request, priority=1)
        assert isinstance(pool.submit(request), int)

    def test_cancel_and_expire_translate_pool_ids(self, runner, template_prompts):
        pool = ReplicaPool(
            runner, num_replicas=2, config=GenerationConfig(max_new_tokens=8)
        )
        first = pool.submit(template_prompts[0])
        second = pool.submit(template_prompts[1])
        pool.step()
        cancelled = pool.cancel(first)
        assert cancelled.request_id == first
        assert cancelled.finish_reason == "cancelled"
        expired = pool.expire(second)
        assert expired.request_id == second
        assert expired.finish_reason == "expired"
        with pytest.raises(ConfigurationError, match="not in flight"):
            pool.cancel(first)
        with pytest.raises(ConfigurationError, match="not in flight"):
            pool.expire(99)

    def test_stats_merge_replicas(self, runner, template_prompts):
        outputs, pool = pool_outputs(
            runner,
            template_prompts,
            num_replicas=3,
            config=GenerationConfig(max_new_tokens=4),
            max_batch_size=2,
        )
        stats = pool.stats
        assert stats["completed_requests"] == len(template_prompts)
        assert stats["generated_tokens"] == sum(
            len(output.generated) for output in outputs.values()
        )
        assert stats["generated_tokens"] == pool.cluster_stats.merged_generated_tokens(
            pool.replicas
        )

    def test_validation(self, runner):
        with pytest.raises(ConfigurationError, match="num_replicas"):
            ReplicaPool(runner, num_replicas=0)
        with pytest.raises(ConfigurationError, match="max_retries"):
            ReplicaPool(runner, max_retries=-1)


class TestPoolBackedAsyncEngine:
    def test_streams_chaos_run_to_solo_parity(self, runner, template_prompts):
        solo = GenerationEngine(runner).generate(
            list(template_prompts[:4]), GenerationConfig(max_new_tokens=6)
        )

        async def main():
            pool = ReplicaPool(
                runner,
                num_replicas=2,
                config=GenerationConfig(max_new_tokens=6),
                fault_injector=FaultInjector(seed=0, kill_at={2: 0}),
                max_batch_size=2,
                block_size=4,
                breaker_cooldown=2,
            )
            async with AsyncEngine(pool=pool) as engine:
                streams = [await engine.submit(p) for p in template_prompts[:4]]
                collected = [[token async for token in s] for s in streams]
                outputs = [await s.result() for s in streams]
            return collected, outputs, pool

        collected, outputs, pool = asyncio.run(main())
        assert pool.cluster_stats.failures >= 1
        for index, (tokens, output) in enumerate(zip(collected, outputs)):
            np.testing.assert_array_equal(np.asarray(tokens), output.generated)
            np.testing.assert_array_equal(output.generated, solo.generated[index])

    def test_constructor_rejects_ambiguous_engines(self, runner):
        pool = ReplicaPool(runner, num_replicas=1)
        with pytest.raises(ConfigurationError, match="exactly one"):
            AsyncEngine(runner, pool=pool)
        with pytest.raises(ConfigurationError, match="exactly one"):
            AsyncEngine()
        with pytest.raises(ConfigurationError, match="config"):
            AsyncEngine(pool=pool, config=GenerationConfig())


class TestRouterShortPrompts:
    """Prompts shorter than ``template_window`` must route first-class.

    The rendezvous key is the first ``template_window`` tokens; a shorter
    prompt's key is simply the whole prompt, so determinism, stickiness,
    and failover must hold all the way down to the empty prompt.
    """

    def test_short_prompt_routing_is_deterministic(self):
        prompt = np.array([5, 9, 2], dtype=np.int64)
        first = Router(num_replicas=4, template_window=16)
        second = Router(num_replicas=4, template_window=16)
        assert first.rank(prompt) == second.rank(prompt)
        assert first.place(prompt, [0, 1, 2, 3]) == first.place(prompt, [0, 1, 2, 3])
        # A short prompt and its window-truncated self share a key.
        assert first.rank(prompt) == first.rank(np.array([5, 9, 2]))

    def test_short_prompt_failover_is_stable(self):
        prompt = np.array([7, 7], dtype=np.int64)
        router = Router(num_replicas=3, template_window=16)
        all_ids = [0, 1, 2]
        winner = router.place(prompt, all_ids)
        survivors = [rid for rid in all_ids if rid != winner]
        failover = router.place(prompt, survivors)
        assert failover == router.rank(prompt)[1]
        # Recovery restores the original winner (no rehash drift).
        assert router.place(prompt, all_ids) == winner

    def test_empty_prompt_routes_without_crashing(self):
        empty = np.array([], dtype=np.int64)
        router = Router(num_replicas=3, template_window=8)
        ranked = router.rank(empty)
        assert sorted(ranked) == [0, 1, 2]
        assert router.place(empty, [0, 1, 2]) == ranked[0]
        assert router.place(empty, [0, 1, 2]) == router.place(empty, [0, 1, 2])

    def test_distinct_short_prompts_can_spread(self):
        router = Router(num_replicas=4, template_window=16)
        placements = {
            router.place(np.array([token], dtype=np.int64), [0, 1, 2, 3])
            for token in range(32)
        }
        assert len(placements) > 1


class TestBackoffJitter:
    def test_jitter_stream_is_seed_deterministic(self, runner):
        same_a = ReplicaPool(runner, num_replicas=1, seed=3)._backoff_rng.random(8)
        same_b = ReplicaPool(runner, num_replicas=1, seed=3)._backoff_rng.random(8)
        other = ReplicaPool(runner, num_replicas=1, seed=4)._backoff_rng.random(8)
        np.testing.assert_array_equal(same_a, same_b)
        assert not np.array_equal(same_a, other)

    def test_chaos_run_replays_identically_under_one_seed(self, runner, template_prompts):
        """Jittered backoff must not cost reproducibility: same seed, same run."""

        def run():
            return pool_outputs(
                runner,
                template_prompts[:4],
                injector=FaultInjector(seed=0, kill_at={2: 0, 5: 1}, max_kills=2),
                num_replicas=3,
                seed=9,
                config=GenerationConfig(max_new_tokens=6),
                max_batch_size=2,
                block_size=4,
            )

        first, first_pool = run()
        second, second_pool = run()
        assert first_pool.cluster_stats.recoveries >= 1
        assert set(first) == set(second)
        for request_id, output in first.items():
            np.testing.assert_array_equal(second[request_id].generated, output.generated)
            assert second[request_id].finished_at == output.finished_at
            assert second[request_id].retries == output.retries


class TestFailureCauses:
    """Degraded finishes carry a structured terminal cause and retry count."""

    def test_retry_budget_exhaustion_is_named(self, runner, template_prompts):
        outputs, pool = pool_outputs(
            runner,
            template_prompts[:4],
            injector=FaultInjector(seed=0, kill_at={2: 0}),
            num_replicas=2,
            config=GenerationConfig(max_new_tokens=6),
            max_batch_size=4,
            block_size=4,
            max_retries=0,
        )
        degraded = [o for o in outputs.values() if o.finish_reason == "degraded"]
        assert degraded
        for output in degraded:
            assert output.failure_cause == "retry_budget_exhausted"
        healthy = [o for o in outputs.values() if o.finish_reason != "degraded"]
        assert all(o.failure_cause is None for o in healthy)
        assert pool.cluster_stats.degraded_causes == {
            "retry_budget_exhausted": len(degraded)
        }

    def test_no_healthy_replica_is_named(self, runner, template_prompts):
        outputs, pool = pool_outputs(
            runner,
            template_prompts[:2],
            injector=FaultInjector(seed=0, kill_at={1: 0}),
            num_replicas=1,
            config=GenerationConfig(max_new_tokens=8),
            max_batch_size=2,
            breaker_cooldown=50,
        )
        assert outputs
        for output in outputs.values():
            assert output.failure_cause == "no_healthy_replica"
        assert pool.cluster_stats.degraded_causes.get("no_healthy_replica") == len(outputs)

    def test_shed_requests_are_named_and_tallied_per_replica(
        self, runner, template_prompts
    ):
        pool = ReplicaPool(
            runner,
            num_replicas=1,
            config=GenerationConfig(max_new_tokens=5),
            fault_injector=FaultInjector(seed=0, exhaust_at={1: 0}),
            max_batch_size=1,
            block_size=4,
        )
        ids = [
            pool.submit(prompt, priority=priority)
            for prompt, priority in zip(template_prompts[:3], (0, 1, 5))
        ]
        outputs = {output.request_id: output for output in pool.run()}
        assert outputs[ids[2]].failure_cause == "shed"
        assert pool.cluster_stats.degraded_causes.get("shed") == 1
        # The replica-local scheduler tallies the same cause.
        merged = {}
        for stats in pool.replica_stats():
            for cause, count in stats.degraded_causes.items():
                merged[cause] = merged.get(cause, 0) + count
        assert merged.get("shed") == 1

    def test_recovered_outputs_report_their_retry_count(self, runner, template_prompts):
        outputs, pool = pool_outputs(
            runner,
            template_prompts[:4],
            injector=FaultInjector(seed=0, kill_at={2: 0}),
            num_replicas=2,
            config=GenerationConfig(max_new_tokens=6),
            max_batch_size=2,
            block_size=4,
        )
        assert pool.cluster_stats.recoveries >= 1
        assert any(output.retries >= 1 for output in outputs.values())
        for output in outputs.values():
            assert output.finish_reason != "degraded"
            assert output.failure_cause is None

    def test_cause_surfaces_through_the_async_stream(self, runner, template_prompts):
        pool = ReplicaPool(
            runner,
            num_replicas=1,
            config=GenerationConfig(max_new_tokens=6),
            fault_injector=FaultInjector(seed=0, kill_at={1: 0}),
            max_retries=0,
            max_batch_size=2,
            breaker_cooldown=50,
        )

        async def main():
            async with AsyncEngine(pool=pool) as engine:
                stream = await engine.submit(template_prompts[0])
                return await stream.result()

        output = asyncio.run(main())
        assert output.finish_reason == "degraded"
        assert output.failure_cause in {"retry_budget_exhausted", "no_healthy_replica"}
