"""Tests of tensor-parallel sharding: parity, transport faults, recovery.

The anchor is the tentpole guarantee of the shard layer: a
``ShardedRunner`` over N shards serves **bit-identical** tokens and
committed-position logits to the solo runner for Tender implicit and
explicit requantization — including while the collective transport is
dropping, corrupting, delaying, and duplicating messages — because
column-parallel sharding never splits the channel (reduction) axis the
calibration tables index, and every surviving collective delivers a
pristine payload (corruption is *caught* by the CRC32 checksum and
retried, never silently reduced).  Around that sit the transport
mechanics (sequence-number dedup, bounded exponential-backoff retry,
straggler hedging, kill → group-unhealthy) and the cluster integration:
a replica that is a whole shard group dies as one fault unit and its
in-flight requests replay, bit-identically, onto a rebuilt group.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TenderConfig, TenderQuantizer
from repro.errors import (
    CollectiveTransportError,
    ConfigurationError,
    ShardFailureError,
)
from repro.gpu import TensorParallelWorkload, tensor_parallel_speedup
from repro.models.inference import TransformerRunner
from repro.models.weights import (
    AttentionWeights,
    BlockWeights,
    FeedForwardWeights,
    LayerNormWeights,
    ModelWeights,
)
from repro.nn import TransformerConfig
from repro.serve import (
    CollectiveFaultInjector,
    CollectiveGroup,
    GenerationConfig,
    ReplicaPool,
    Scheduler,
    ShardedRunner,
)
from repro.serve.shard import partition_bounds


def _four_head_weights():
    """A random-weight 4-head model (no training) so N=4 sharding is legal."""
    config = TransformerConfig(
        vocab_size=64, d_model=32, num_heads=4, num_layers=2, d_ff=64, max_seq_len=128, seed=0
    )
    rng = np.random.default_rng(7)

    def dense(shape):
        return rng.normal(scale=0.25, size=shape)

    def norm():
        return LayerNormWeights(gain=np.ones(config.d_model), bias=np.zeros(config.d_model))

    blocks = [
        BlockWeights(
            ln_attn=norm(),
            attn=AttentionWeights(
                wq=dense((config.d_model, config.d_model)), bq=np.zeros(config.d_model),
                wk=dense((config.d_model, config.d_model)), bk=np.zeros(config.d_model),
                wv=dense((config.d_model, config.d_model)), bv=np.zeros(config.d_model),
                wo=dense((config.d_model, config.d_model)), bo=np.zeros(config.d_model),
            ),
            ln_ffn=norm(),
            ffn=FeedForwardWeights(
                w1=dense((config.d_model, config.d_ff)), b1=np.zeros(config.d_ff),
                w2=dense((config.d_ff, config.d_model)), b2=np.zeros(config.d_model),
            ),
        )
        for _ in range(config.num_layers)
    ]
    return ModelWeights(
        config=config,
        token_embedding=dense((config.vocab_size, config.d_model)),
        position_embedding=dense((config.max_seq_len, config.d_model)),
        blocks=blocks,
        ln_final=norm(),
        lm_head=dense((config.d_model, config.vocab_size)),
    )


@pytest.fixture(scope="module")
def four_head_runners():
    """Solo runners over the 4-head model: FP plus Tender implicit/explicit."""
    weights = _four_head_weights()
    rng = np.random.default_rng(3)
    calibration = [rng.integers(0, 64, size=40) for _ in range(6)]
    config = TenderConfig(bits=8, num_groups=8, row_chunk_size=8)
    return {
        "fp": TransformerRunner(weights),
        "tender-implicit": TenderQuantizer(config, implicit=True).quantize(weights, calibration),
        "tender-explicit": TenderQuantizer(config, implicit=False).quantize(weights, calibration),
    }


@pytest.fixture(scope="module")
def shard_prompts():
    """Eight short prompts, two sharing a template (prefix-cache pressure)."""
    rng = np.random.default_rng(11)
    template = rng.integers(0, 64, size=6)
    prompts = [rng.integers(0, 64, size=4 + i % 5) for i in range(6)]
    prompts += [np.concatenate([template, rng.integers(0, 64, size=3)]) for _ in range(2)]
    return prompts


def _serve(runner, prompts, max_new_tokens=6):
    """One scheduler run with logit recording; outputs keyed by request id."""
    scheduler = Scheduler(
        runner,
        GenerationConfig(max_new_tokens=max_new_tokens),
        max_batch_size=3,
        block_size=8,
        record_logits=True,
    )
    for prompt in prompts:
        scheduler.submit(prompt)
    return {output.request_id: output for output in scheduler.run()}


def _assert_outputs_identical(actual, expected):
    assert set(actual) == set(expected)
    for request_id, output in expected.items():
        np.testing.assert_array_equal(actual[request_id].generated, output.generated)
        np.testing.assert_array_equal(actual[request_id].step_logits, output.step_logits)
        assert actual[request_id].finish_reason == output.finish_reason


class TestPartitionBounds:
    def test_even_split(self):
        assert partition_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_leading_parts(self):
        assert partition_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_slices_reassemble_exactly(self):
        data = np.arange(23)
        parts = [data[a:b] for a, b in partition_bounds(23, 5)]
        np.testing.assert_array_equal(np.concatenate(parts), data)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="fewer than one"):
            partition_bounds(8, 0)


class TestCollectiveTransport:
    def payload(self, shard_id):
        return np.full((2, 3), float(shard_id))

    def test_fault_free_gather_concatenates_in_shard_order(self):
        group = CollectiveGroup(3)
        out = group.all_gather([self.payload(s) for s in range(3)], axis=-1)
        np.testing.assert_array_equal(
            out, np.concatenate([self.payload(s) for s in range(3)], axis=-1)
        )
        assert group.stats.collectives == 1
        assert group.stats.messages == 3
        assert group.stats.bytes_moved > 0

    def test_scripted_corruption_is_caught_and_retried(self):
        injector = CollectiveFaultInjector(corrupt_at={0: 1})
        group = CollectiveGroup(2, fault_injector=injector)
        out = group.all_gather([self.payload(0), self.payload(1)])
        np.testing.assert_array_equal(
            out, np.concatenate([self.payload(0), self.payload(1)], axis=-1)
        )
        assert group.stats.corruption_caught == 1
        assert group.stats.retries == 1

    def test_scripted_drop_times_out_then_retries(self):
        injector = CollectiveFaultInjector(drop_at={0: 0})
        group = CollectiveGroup(2, fault_injector=injector)
        out = group.all_gather([self.payload(0), self.payload(1)])
        np.testing.assert_array_equal(out[:, :3], self.payload(0))
        assert group.stats.timeouts == 1
        assert group.stats.retries == 1

    def test_straggler_policy_hedges_or_waits(self):
        for hedge in (True, False):
            injector = CollectiveFaultInjector(delay_at={0: 0})
            group = CollectiveGroup(2, fault_injector=injector, hedge=hedge)
            group.all_gather([self.payload(0), self.payload(1)])
            assert group.stats.stragglers == 1
            assert group.stats.hedges == (1 if hedge else 0)

    def test_duplicates_are_deduplicated(self):
        injector = CollectiveFaultInjector(duplicate_at={0: 1})
        group = CollectiveGroup(2, fault_injector=injector)
        out = group.all_gather([self.payload(0), self.payload(1)])
        assert out.shape == (2, 6)
        assert group.stats.duplicates_ignored == 1

    def test_retry_budget_exhaustion_raises(self):
        injector = CollectiveFaultInjector(drop_rate=1.0)
        group = CollectiveGroup(2, fault_injector=injector, max_retries=2)
        with pytest.raises(CollectiveTransportError, match="exceeded 2 retries"):
            group.all_gather([self.payload(0), self.payload(1)])

    def test_kill_trips_the_group_unhealthy(self):
        injector = CollectiveFaultInjector(kill_at={1: 0})
        group = CollectiveGroup(2, fault_injector=injector)
        group.all_gather([self.payload(0), self.payload(1)])
        with pytest.raises(ShardFailureError, match="died during collective"):
            group.all_gather([self.payload(0), self.payload(1)])
        assert not group.healthy
        # Once unhealthy, every further collective refuses outright.
        with pytest.raises(ShardFailureError, match="dead shards"):
            group.all_gather([self.payload(0), self.payload(1)])

    def test_all_reduce_sums_deterministically(self):
        group = CollectiveGroup(3)
        out = group.all_reduce([self.payload(s) for s in range(3)])
        np.testing.assert_array_equal(out, np.full((2, 3), 3.0))

    def test_payload_count_mismatch_raises(self):
        group = CollectiveGroup(3)
        with pytest.raises(ConfigurationError, match="expects 3 payloads"):
            group.all_gather([self.payload(0)])

    def test_injector_schedule_is_seed_deterministic(self):
        def schedule(seed):
            injector = CollectiveFaultInjector(
                seed, drop_rate=0.2, corrupt_rate=0.2, delay_rate=0.2, duplicate_rate=0.2
            )
            return [injector.draw(seq, shard, 0) for seq in range(30) for shard in range(2)]

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_scripted_faults_fire_only_on_first_attempt(self):
        injector = CollectiveFaultInjector(drop_at={0: 0})
        assert injector.draw(0, 0, attempt=0) == "drop"
        assert injector.draw(0, 0, attempt=1) is None

    def test_max_kills_bounds_the_chaos(self):
        injector = CollectiveFaultInjector(kill_rate=1.0, max_kills=1)
        assert injector.draw(0, 0, 0) == "kill"
        assert injector.draw(1, 0, 0) is None


@pytest.mark.parametrize("num_shards", [2, 4])
@pytest.mark.parametrize("name", ["tender-implicit", "tender-explicit", "fp"])
class TestShardedParity:
    """The acceptance gate: sharded output must be bit-identical to solo."""

    def test_serving_parity(self, num_shards, name, four_head_runners, shard_prompts):
        solo = four_head_runners[name]
        expected = _serve(solo, shard_prompts)
        sharded = ShardedRunner(solo, num_shards)
        actual = _serve(sharded, shard_prompts)
        _assert_outputs_identical(actual, expected)
        assert sharded.group.stats.collectives > 0

    def test_serving_parity_under_chaos(self, num_shards, name, four_head_runners, shard_prompts):
        """Drop/corrupt/delay/duplicate faults must not perturb one bit."""
        solo = four_head_runners[name]
        expected = _serve(solo, shard_prompts)
        injector = CollectiveFaultInjector(
            seed=2,
            drop_rate=0.01,
            corrupt_rate=0.01,
            delay_rate=0.01,
            duplicate_rate=0.01,
            kill_rate=0.0,
        )
        group = CollectiveGroup(num_shards, fault_injector=injector, max_retries=4)
        sharded = ShardedRunner(solo, num_shards, group=group)
        actual = _serve(sharded, shard_prompts)
        _assert_outputs_identical(actual, expected)
        # The chaos actually ran: faults fired and were ridden out.
        assert group.stats.retries > 0
        assert group.stats.corruption_caught > 0
        assert group.stats.duplicates_ignored > 0
        assert group.stats.stragglers > 0

    def test_full_forward_logits_parity(self, num_shards, name, four_head_runners):
        """The uncached ``logits()`` path shards bit-identically too."""
        solo = four_head_runners[name]
        tokens = np.arange(24).reshape(2, 12) % 60
        sharded = ShardedRunner(solo, num_shards)
        np.testing.assert_array_equal(sharded.logits(tokens), solo.logits(tokens))


class TestShardedRunnerConstruction:
    def test_calibration_tables_are_shared_replicas(self, four_head_runners):
        """Every shard executor holds the *same* calibration-table object.

        Column-parallel sharding never splits the channel axis the tables
        index, so the tables replicate by reference (the placement decision
        in architecture.md); only the per-site weight caches are private.
        """
        solo = four_head_runners["tender-implicit"]
        sharded = ShardedRunner(solo, 2)
        for executor in sharded.executors:
            assert executor.site_params is solo.executor.site_params
            assert executor is not solo.executor

    def test_head_bounds_cover_all_heads(self, four_head_runners):
        sharded = ShardedRunner(four_head_runners["fp"], 4)
        assert sharded.head_bounds == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_healthy_tracks_the_group(self, four_head_runners):
        sharded = ShardedRunner(four_head_runners["fp"], 2)
        assert sharded.healthy
        sharded.group.fail_shard(1)
        assert not sharded.healthy

    def test_validation(self, four_head_runners):
        solo = four_head_runners["fp"]
        with pytest.raises(ConfigurationError, match="num_shards"):
            ShardedRunner(solo, 5)
        with pytest.raises(ConfigurationError, match="num_shards"):
            ShardedRunner(solo, 0)
        with pytest.raises(ConfigurationError, match="spans 3 shards"):
            ShardedRunner(solo, 2, group=CollectiveGroup(3))


class TestPoolIntegration:
    """A shard group is one replica — one fault unit — of the pool."""

    def pool_outputs(self, runner_or_factory, prompts, **kwargs):
        if callable(runner_or_factory) and not isinstance(runner_or_factory, TransformerRunner):
            solo = kwargs.pop("solo")
            pool = ReplicaPool(solo, runner_factory=runner_or_factory, **kwargs)
        else:
            pool = ReplicaPool(runner_or_factory, **kwargs)
        for prompt in prompts:
            pool.submit(prompt)
        return {output.request_id: output for output in pool.run()}, pool

    def test_shard_kill_recovers_bit_identically(self, four_head_runners, shard_prompts):
        solo = four_head_runners["tender-implicit"]
        kwargs = dict(
            num_replicas=2,
            config=GenerationConfig(max_new_tokens=6),
            max_batch_size=2,
            block_size=8,
        )
        expected, _ = self.pool_outputs(solo, shard_prompts, **kwargs)
        # One injector shared across rebuilds: the scripted kill fires once,
        # the rebuilt group then runs clean (max_kills bounds the chaos).
        injector = CollectiveFaultInjector(seed=0, kill_at={40: 1}, max_kills=1)
        factory = lambda rid: ShardedRunner(  # noqa: E731
            solo, 2, group=CollectiveGroup(2, fault_injector=injector)
        )
        actual, pool = self.pool_outputs(factory, shard_prompts, solo=solo, **kwargs)
        assert pool.cluster_stats.failures >= 1
        assert pool.cluster_stats.recoveries >= 1
        assert any(event.kind == "kill" for event in injector.events)
        _assert_outputs_identical(actual, expected)

    def test_exhausted_transport_retries_degrade_with_cause(
        self, four_head_runners, shard_prompts
    ):
        solo = four_head_runners["fp"]
        injector = CollectiveFaultInjector(seed=0, drop_rate=1.0, max_kills=0)
        factory = lambda rid: ShardedRunner(  # noqa: E731
            solo, 2, group=CollectiveGroup(2, fault_injector=injector, max_retries=1)
        )
        outputs, pool = self.pool_outputs(
            factory,
            shard_prompts[:3],
            solo=solo,
            num_replicas=1,
            config=GenerationConfig(max_new_tokens=4),
            max_retries=0,
            max_batch_size=2,
            block_size=8,
        )
        degraded = [output for output in outputs.values() if output.finish_reason == "degraded"]
        assert degraded
        for output in degraded:
            assert output.failure_cause == "retry_budget_exhausted"
        assert pool.cluster_stats.degraded_causes.get("retry_budget_exhausted", 0) >= 1


class TestTensorParallelModel:
    def workload(self, num_shards, **overrides):
        kwargs = dict(
            num_shards=num_shards,
            batch=16,
            context=512,
            d_model=4096,
            d_ff=16384,
            num_heads=32,
            num_layers=32,
            vocab=32000,
        )
        kwargs.update(overrides)
        return TensorParallelWorkload(**kwargs)

    def test_solo_has_no_communication(self):
        result = tensor_parallel_speedup(self.workload(1), "A100")
        for scheme in result.values():
            assert scheme["comm_ms"] == 0.0
            assert scheme["speedup"] == pytest.approx(1.0)

    def test_sharding_a_large_model_pays(self):
        result = tensor_parallel_speedup(self.workload(4), "A100")
        assert result["Tender SW"]["speedup"] > 1.5

    def test_communication_eventually_dominates(self):
        """On a slow link, wider sharding loses: comm grows, compute shrinks."""
        slow = dict(link_latency_us=50.0, link_bandwidth_gb_s=5.0)
        two = tensor_parallel_speedup(self.workload(2, **slow), "A100")
        eight = tensor_parallel_speedup(self.workload(8, **slow), "A100")
        assert eight["Tender SW"]["comm_ms"] > two["Tender SW"]["comm_ms"]

    def test_group_failure_rate_compounds_per_shard(self):
        workload = self.workload(4, shard_failure_rate=0.01)
        assert workload.group_failure_rate() == pytest.approx(1.0 - 0.99**4)

    def test_goodput_degrades_with_chaos_and_recovers_with_cache_hits(self):
        clean = tensor_parallel_speedup(self.workload(2), "A100")
        chaotic = tensor_parallel_speedup(
            self.workload(2, shard_failure_rate=0.002, retry_backoff_steps=2.0), "A100"
        )
        cached = tensor_parallel_speedup(
            self.workload(
                2, shard_failure_rate=0.002, retry_backoff_steps=2.0, resume_hit_rate=0.9
            ),
            "A100",
        )
        for scheme in clean:
            assert clean[scheme]["goodput_ratio"] == pytest.approx(1.0)
            assert chaotic[scheme]["goodput_ratio"] < 1.0
            assert cached[scheme]["goodput_ratio"] > chaotic[scheme]["goodput_ratio"]

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="num_shards"):
            self.workload(0)
        with pytest.raises(ConfigurationError, match="num_heads"):
            self.workload(64)
        with pytest.raises(ConfigurationError, match="shard_failure_rate"):
            self.workload(2, shard_failure_rate=1.0)
        with pytest.raises(ConfigurationError, match="latency/bandwidth"):
            self.workload(2, link_bandwidth_gb_s=0.0)
