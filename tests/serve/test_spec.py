"""Tests of speculative draft-and-verify decoding over the paged KV cache.

The correctness bar, matching the house style: speculative decoding must be
**bit-identical** — generated tokens AND the logits behind every committed
token — to non-speculative decoding for Tender's integer pipeline
(implicit and explicit requantization), across draft lengths 1-8, prefix
cache on/off, both shipped drafters, greedy and seeded top-k sampling, and
eos-mid-draft.  The FP baseline's logits may differ by BLAS row-blocking
noise only (its tokens still match on these traces).  Speculation changes
*how many forwards* serving takes, never *what* it serves.

Alongside the end-to-end sweeps: unit tests of the drafters, of
``TransformerRunner.verify`` against sequential decode steps, and of the
``PagedKVCache.truncate`` rollback primitive's refcount / COW / radix-index
edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TenderConfig, TenderQuantizer
from repro.errors import ConfigurationError
from repro.models import TransformerRunner
from repro.serve import (
    GenerationConfig,
    GenerationEngine,
    KVCache,
    ModelDraft,
    PagedKVCache,
    PromptLookupDraft,
    Scheduler,
    SpecConfig,
)
from repro.serve.spec import _SpecState


def tender_runner(weights, calibration, implicit: bool) -> TransformerRunner:
    config = TenderConfig(bits=8, num_groups=8, row_chunk_size=8)
    return TenderQuantizer(config, implicit=implicit).quantize(weights, calibration)


@pytest.fixture(scope="module")
def runners(outlier_weights, calibration):
    return {
        "float": TransformerRunner(outlier_weights),
        "tender-implicit": tender_runner(outlier_weights, calibration, implicit=True),
        "tender-explicit": tender_runner(outlier_weights, calibration, implicit=False),
    }


@pytest.fixture(scope="module")
def prompts(corpus_splits):
    """Ragged prompts, including a repetitive one that drafts well."""
    train_tokens, _ = corpus_splits
    span = train_tokens[300:312]
    return [
        train_tokens[:18],
        np.concatenate([span, span, span[:5]]),  # repetitive: lookup hits
        train_tokens[50:61],
        np.concatenate([train_tokens[100:108], train_tokens[100:108]]),
    ]


def serve_all(runner, prompts, config, *, speculation=None, **kwargs):
    scheduler = Scheduler(
        runner,
        config,
        max_batch_size=kwargs.pop("max_batch_size", 3),
        block_size=kwargs.pop("block_size", 8),
        speculation=speculation,
        **kwargs,
    )
    for prompt in prompts:
        scheduler.submit(prompt)
    outputs = {output.request_id: output for output in scheduler.run()}
    return outputs, scheduler


# ----------------------------------------------------------------------
# Drafters
# ----------------------------------------------------------------------
class TestPromptLookupDraft:
    def test_proposes_continuation_of_most_recent_match(self):
        drafter = PromptLookupDraft(max_ngram=3)
        tokens = np.array([1, 2, 3, 9, 9, 1, 2, 3, 7, 8, 1, 2, 3])
        draft = drafter.propose(0, tokens, 4)
        # Suffix [1, 2, 3] most recently occurred at index 5; what followed
        # it there is [7, 8, 1, 2] — the proposed continuation.
        assert draft.tolist() == [7, 8, 1, 2]

    def test_falls_back_to_shorter_ngrams(self):
        drafter = PromptLookupDraft(max_ngram=3, min_ngram=1)
        tokens = np.array([5, 6, 7, 5, 9])
        # No earlier [7, 5, 9] or [5, 9]; unigram [9] has no earlier
        # occurrence either -> no match on the last token... but [5] does
        # occur earlier when the suffix shrinks to it?  The suffix is always
        # the *last* n tokens, so the unigram suffix is [9]: no match.
        assert drafter.propose(0, tokens, 4).size == 0
        tokens = np.array([5, 6, 7, 9, 5])
        draft = drafter.propose(0, tokens, 2)
        # Unigram suffix [5] matched at index 0; continuation [6, 7].
        assert draft.tolist() == [6, 7]

    def test_respects_max_tokens_and_sequence_end(self):
        drafter = PromptLookupDraft(max_ngram=2)
        tokens = np.array([4, 4, 4, 4])
        assert drafter.propose(0, tokens, 2).tolist() == [4, 4]
        assert len(drafter.propose(0, tokens, 10)) <= 10
        assert drafter.propose(0, tokens, 0).size == 0

    def test_cycle_proposal_is_exact(self):
        drafter = PromptLookupDraft()
        cycle = [3, 1, 4, 1, 5]
        tokens = np.array(cycle * 4)
        draft = drafter.propose(0, tokens, 7)
        expected = (cycle * 3)[:7]
        assert draft.tolist() == expected

    def test_invalid_bounds_raise(self):
        with pytest.raises(ConfigurationError):
            PromptLookupDraft(max_ngram=2, min_ngram=3)
        with pytest.raises(ConfigurationError):
            PromptLookupDraft(max_ngram=0)


class TestModelDraft:
    def test_proposals_match_fresh_greedy_decode(self, runners):
        """Cached catch-up must equal drafting from scratch every time."""
        runner = runners["float"]
        drafter = ModelDraft(runner)
        rng = np.random.default_rng(5)
        sequence = rng.integers(0, runner.config.vocab_size, size=12)
        draft = drafter.propose(7, sequence, 4)

        # From-scratch reference: prefill everything, greedy-decode 4.
        cache = KVCache.for_model(runner.config, batch_size=1)
        runner.prefill(sequence[None, :], np.array([len(sequence)]), cache)
        reference = []
        token = int(sequence[-1])
        cache.lengths[:] = len(sequence) - 1
        logits = runner.decode_step(np.array([token]), cache)
        for _ in range(4):
            token = int(np.argmax(logits[0]))
            reference.append(token)
            logits = runner.decode_step(np.array([token]), cache)
        assert draft.tolist() == reference

        # Extend the sequence as if 2 drafts were accepted plus a correction,
        # and re-propose: the rolled-back cache must give the same answer as
        # a fresh drafter.
        extended = np.concatenate([sequence, draft[:2], [int(draft[2]) ^ 1]])
        continued = drafter.propose(7, extended, 3)
        fresh = ModelDraft(runner).propose(7, extended, 3)
        assert continued.tolist() == fresh.tolist()

    def test_truncated_copy_shares_weights(self, runners):
        runner = runners["float"]
        drafter = ModelDraft.truncated(runner, 1)
        assert drafter.runner.config.num_layers == 1
        assert drafter.runner.weights.blocks[0] is runner.weights.blocks[0]
        assert drafter.runner.weights.lm_head is runner.weights.lm_head
        with pytest.raises(ConfigurationError):
            ModelDraft.truncated(runner, 0)
        with pytest.raises(ConfigurationError):
            ModelDraft.truncated(runner, runner.config.num_layers + 1)

    def test_respects_draft_model_max_seq_len(self, runners):
        runner = runners["float"]
        drafter = ModelDraft(runner)
        near_limit = np.zeros(runner.config.max_seq_len - 2, dtype=np.int64)
        assert len(drafter.propose(0, near_limit, 8)) <= 2

    def test_release_drops_state(self, runners):
        drafter = ModelDraft(runners["float"])
        drafter.propose(3, np.array([1, 2, 3, 4]), 2)
        assert 3 in drafter._states
        drafter.release(3)
        assert 3 not in drafter._states


class TestSpecConfig:
    def test_validation(self):
        drafter = PromptLookupDraft()
        with pytest.raises(ConfigurationError):
            SpecConfig(drafter=drafter, min_draft=0)
        with pytest.raises(ConfigurationError):
            SpecConfig(drafter=drafter, draft_tokens=9, max_draft=8)
        with pytest.raises(ConfigurationError):
            SpecConfig(drafter=drafter, ema_decay=0.0)
        with pytest.raises(ConfigurationError):
            SpecConfig(drafter=drafter, grow_threshold=0.2, shrink_threshold=0.3)
        with pytest.raises(ConfigurationError):
            Scheduler(None, speculation="yes")  # type: ignore[arg-type]

    def test_ema_adapts_draft_length(self):
        config = SpecConfig(drafter=PromptLookupDraft(), draft_tokens=4, max_draft=8)
        state = _SpecState(draft_len=4)
        for _ in range(3):
            state.observe(4, 4, config)
        assert state.draft_len > 4
        for _ in range(8):
            state.observe(state.draft_len, 0, config)
        assert state.draft_len == config.min_draft
        state.observe(0, 0, config)  # no proposal: no change
        assert state.draft_len == config.min_draft

    def test_non_adaptive_pins_draft_length(self):
        config = SpecConfig(
            drafter=PromptLookupDraft(), draft_tokens=3, adaptive=False
        )
        state = _SpecState(draft_len=3)
        for _ in range(5):
            state.observe(3, 3, config)
        assert state.draft_len == 3


# ----------------------------------------------------------------------
# TransformerRunner.verify vs sequential decode steps
# ----------------------------------------------------------------------
class TestVerifyForward:
    @pytest.mark.parametrize("name", ["tender-implicit", "tender-explicit"])
    def test_verify_logits_match_decode_steps_bitwise(self, runners, prompts, name):
        runner = runners[name]
        prompt = prompts[0]
        drafts = np.array([7, 11, 13, 17])

        # Sequential reference: prefill, then decode the pending token and
        # each draft one step at a time.
        cache_a = KVCache.for_model(runner.config, batch_size=1)
        logits = runner.prefill(prompt[None, :], np.array([len(prompt)]), cache_a)
        pending = int(np.argmax(logits[0]))
        sequential = []
        token = pending
        for draft in list(drafts):
            step = runner.decode_step(np.array([token]), cache_a)
            sequential.append(step[0])
            token = int(draft)
        bonus = runner.decode_step(np.array([token]), cache_a)
        sequential.append(bonus[0])

        # One verify forward over [pending, drafts...].
        cache_b = KVCache.for_model(runner.config, batch_size=1)
        runner.prefill(prompt[None, :], np.array([len(prompt)]), cache_b)
        row = np.concatenate([[pending], drafts])
        verified = runner.verify(row[None, :], cache_b, np.array([len(prompt)]))
        assert verified.shape == (1, len(drafts) + 1, runner.config.vocab_size)
        for position, reference in enumerate(sequential):
            assert np.array_equal(verified[0, position], reference), position
        assert cache_b.lengths[0] == len(prompt) + len(drafts) + 1

    def test_verify_float_close(self, runners, prompts):
        runner = runners["float"]
        prompt = prompts[2]
        cache = KVCache.for_model(runner.config, batch_size=1)
        logits = runner.prefill(prompt[None, :], np.array([len(prompt)]), cache)
        pending = int(np.argmax(logits[0]))
        reference = runner.decode_step(np.array([pending]), cache)

        cache_b = KVCache.for_model(runner.config, batch_size=1)
        runner.prefill(prompt[None, :], np.array([len(prompt)]), cache_b)
        verified = runner.verify(
            np.array([[pending, 3]]), cache_b, np.array([len(prompt)])
        )
        np.testing.assert_allclose(verified[0, 0], reference[0], atol=1e-12)

    def test_verify_validation(self, runners):
        runner = runners["float"]
        cache = KVCache.for_model(runner.config, batch_size=1)
        with pytest.raises(ConfigurationError):
            runner.verify(np.array([1, 2]), cache, np.array([0]))  # 1-D tokens
        with pytest.raises(ConfigurationError):
            runner.verify(np.array([[1, 2]]), cache, np.array([0, 1]))
        with pytest.raises(ConfigurationError):
            runner.verify(np.array([[1, 2]]), cache, np.array([-1]))


# ----------------------------------------------------------------------
# PagedKVCache.truncate edge cases
# ----------------------------------------------------------------------
class TestTruncate:
    def make_pool(self, **kwargs):
        defaults = dict(num_layers=1, num_heads=1, d_head=4, block_size=4, num_blocks=8)
        defaults.update(kwargs)
        return PagedKVCache(**defaults)

    def write_tokens(self, pool, slot, start, count, value=1.0):
        keys = np.full((1, 1, count, 4), value)
        positions = np.arange(start, start + count)[None, :]
        pool.write(0, [slot], keys, keys, positions)

    def test_rollback_frees_tail_block_at_boundary(self):
        pool = self.make_pool()
        slot = pool.reserve(12)  # 3 blocks
        self.write_tokens(pool, slot, 0, 10)
        pool.set_length(slot, 10)
        free_before = pool.free_block_count
        released = pool.truncate(slot, 8)  # exactly 2 blocks
        assert released == 1
        assert len(pool.block_table(slot)) == 2
        assert pool.free_block_count == free_before + 1
        assert pool.length_of(slot) == 8

    def test_rollback_into_shared_block_triggers_no_cow(self):
        pool = self.make_pool()
        tokens = np.arange(8)
        slot_a = pool.reserve(12)
        self.write_tokens(pool, slot_a, 0, 8)
        pool.set_length(slot_a, 8)
        pool.publish_prefix(slot_a, tokens)
        matched = pool.match_prefix(tokens)
        assert len(matched) == 2
        slot_b = pool.reserve(12, shared=matched)
        pool.set_length(slot_b, 8)
        table_before = pool.block_table(slot_b)
        assert pool.ref_count(table_before[1]) == 2
        # Roll slot B back into the shared second block: no copy, no scrub,
        # no de-index — only the length moves (and the private tail block
        # is released).
        version_before = pool.table_version
        pool.truncate(slot_b, 6)
        assert pool.block_table(slot_b)[:2] == table_before[:2]
        assert pool.ref_count(table_before[1]) == 2
        assert pool.cached_block_count == 2
        assert np.all(pool.key_blocks[0][:, table_before[1]] != 0.0)
        assert pool.table_version > version_before  # tail release only

    def test_rollback_of_published_prefix_stays_matchable(self):
        pool = self.make_pool()
        tokens = np.arange(12)
        slot = pool.reserve(12)
        self.write_tokens(pool, slot, 0, 12)
        pool.set_length(slot, 12)
        pool.publish_prefix(slot, tokens)
        assert pool.cached_block_count == 3
        chain = pool.block_table(slot)
        released = pool.truncate(slot, 4)
        assert released == 2
        # Fully released published blocks keep their contents and index
        # entries on the LRU: the whole chain still matches, anchored by the
        # retained block (fully below the cut, so never de-indexed).
        assert pool.match_prefix(tokens) == chain
        assert pool.cached_block_count == 3

    def test_rollback_inside_sole_owner_published_block_deindexes_it(self):
        pool = self.make_pool()
        tokens = np.arange(8)
        slot = pool.reserve(8)
        self.write_tokens(pool, slot, 0, 8)
        pool.set_length(slot, 8)
        pool.publish_prefix(slot, tokens)
        assert len(pool.match_prefix(tokens)) == 2
        pool.truncate(slot, 6)  # cut inside the second published block
        # The cut block will be rewritten by its sole owner: de-indexed (and
        # its rolled-back positions scrubbed); the first block survives.
        assert len(pool.match_prefix(tokens)) == 1
        block = pool.block_table(slot)[1]
        assert np.all(pool.key_blocks[0][:, block, 2:] == 0.0)
        assert np.all(pool.key_blocks[0][:, block, :2] != 0.0)

    def test_min_capacity_keeps_blocks(self):
        pool = self.make_pool()
        slot = pool.reserve(12)
        self.write_tokens(pool, slot, 0, 10)
        pool.set_length(slot, 10)
        released = pool.truncate(slot, 5, min_capacity=12)
        assert released == 0
        assert len(pool.block_table(slot)) == 3
        assert pool.length_of(slot) == 5
        # The rolled-back region is scrubbed so later dynamic-quantization
        # windows see zeros, not stale draft KV.
        blocks = pool.block_table(slot)
        assert np.all(pool.key_blocks[0][:, blocks[1], 1:] == 0.0)
        assert np.all(pool.key_blocks[0][:, blocks[2]] == 0.0)
        # Writes within the kept capacity still succeed afterwards.
        self.write_tokens(pool, slot, 5, 7)

    def test_truncate_validation(self):
        pool = self.make_pool()
        slot = pool.reserve(8)
        pool.set_length(slot, 4)
        with pytest.raises(ConfigurationError):
            pool.truncate(slot, 5)
        with pytest.raises(ConfigurationError):
            pool.truncate(slot, -1)
        # A same-length truncate is legal; without min_capacity it still
        # returns spare capacity blocks past the committed length.
        assert pool.truncate(slot, 4, min_capacity=8) == 0
        assert pool.truncate(slot, 4) == 1


# ----------------------------------------------------------------------
# End-to-end parity
# ----------------------------------------------------------------------
class TestSpeculativeParity:
    """Speculation must never change what gets served."""

    @pytest.mark.parametrize("name", ["tender-implicit", "tender-explicit"])
    @pytest.mark.parametrize("prefix_cache", [False, True])
    def test_tokens_and_logits_bit_identical_across_draft_lengths(
        self, runners, prompts, name, prefix_cache
    ):
        runner = runners[name]
        config = GenerationConfig(max_new_tokens=10)
        baseline, _ = serve_all(runner, prompts, config, prefix_cache=prefix_cache)
        for draft_tokens in range(1, 9):
            speculation = SpecConfig(
                drafter=PromptLookupDraft(),
                draft_tokens=draft_tokens,
                max_draft=8,
            )
            outputs, scheduler = serve_all(
                runner,
                prompts,
                config,
                prefix_cache=prefix_cache,
                speculation=speculation,
            )
            for request_id, reference in baseline.items():
                produced = outputs[request_id]
                assert np.array_equal(reference.generated, produced.generated), (
                    f"draft_tokens={draft_tokens} request={request_id}"
                )
                assert np.array_equal(reference.step_logits, produced.step_logits), (
                    f"draft_tokens={draft_tokens} request={request_id}"
                )

    @pytest.mark.parametrize("name", ["tender-implicit", "tender-explicit"])
    def test_model_draft_parity(self, runners, prompts, name):
        runner = runners[name]
        config = GenerationConfig(max_new_tokens=8)
        baseline, _ = serve_all(runner, prompts, config)
        for drafter in (ModelDraft(runners["float"]), ModelDraft.truncated(runner, 1)):
            speculation = SpecConfig(drafter=drafter, draft_tokens=3, max_draft=6)
            outputs, _ = serve_all(runner, prompts, config, speculation=speculation)
            for request_id, reference in baseline.items():
                assert np.array_equal(
                    reference.generated, outputs[request_id].generated
                )
                assert np.array_equal(
                    reference.step_logits, outputs[request_id].step_logits
                )

    def test_float_tokens_identical(self, runners, prompts):
        runner = runners["float"]
        config = GenerationConfig(max_new_tokens=10)
        baseline, _ = serve_all(runner, prompts, config)
        outputs, _ = serve_all(
            runner,
            prompts,
            config,
            speculation=SpecConfig(drafter=PromptLookupDraft()),
        )
        for request_id, reference in baseline.items():
            assert np.array_equal(reference.generated, outputs[request_id].generated)
            np.testing.assert_allclose(
                reference.step_logits, outputs[request_id].step_logits, atol=1e-12
            )

    def test_seeded_top_k_parity(self, runners, prompts):
        """The sampled stream (and rng consumption) matches step for step."""
        runner = runners["tender-implicit"]
        config = GenerationConfig(max_new_tokens=9, top_k=4, temperature=0.8, seed=21)
        baseline, _ = serve_all(runner, prompts, config)
        outputs, _ = serve_all(
            runner,
            prompts,
            config,
            speculation=SpecConfig(drafter=PromptLookupDraft(), draft_tokens=5, max_draft=8),
        )
        for request_id, reference in baseline.items():
            assert np.array_equal(reference.generated, outputs[request_id].generated)
            assert np.array_equal(reference.step_logits, outputs[request_id].step_logits)

    def test_eos_mid_draft_parity(self, runners, prompts):
        runner = runners["tender-implicit"]
        plain, _ = serve_all(runner, prompts, GenerationConfig(max_new_tokens=12))
        # Pick an eos token that actually occurs mid-continuation somewhere.
        eos = None
        for output in plain.values():
            if output.num_steps >= 3:
                eos = int(output.generated[2])
                break
        assert eos is not None
        config = GenerationConfig(max_new_tokens=12, eos_token=eos)
        baseline, _ = serve_all(runner, prompts, config)
        outputs, _ = serve_all(
            runner,
            prompts,
            config,
            speculation=SpecConfig(drafter=PromptLookupDraft(), draft_tokens=6, max_draft=8),
        )
        for request_id, reference in baseline.items():
            produced = outputs[request_id]
            assert reference.finish_reason == produced.finish_reason
            assert np.array_equal(reference.generated, produced.generated)
            assert np.array_equal(reference.step_logits, produced.step_logits)

    def test_chunked_prefill_and_speculation_compose(self, runners, prompts):
        runner = runners["tender-implicit"]
        config = GenerationConfig(max_new_tokens=8)
        baseline, _ = serve_all(runner, prompts, config)
        outputs, _ = serve_all(
            runner,
            prompts,
            config,
            prefix_cache=True,
            prefill_chunk=5,
            speculation=SpecConfig(drafter=PromptLookupDraft()),
        )
        for request_id, reference in baseline.items():
            assert np.array_equal(reference.generated, outputs[request_id].generated)
            assert np.array_equal(reference.step_logits, outputs[request_id].step_logits)


# ----------------------------------------------------------------------
# Scheduler behavior and accounting
# ----------------------------------------------------------------------
class TestSpeculativeScheduling:
    def test_repetitive_trace_reduces_decode_iterations(self, runners, corpus_splits):
        """An extractive trace (prompt embeds the model's own continuation)."""
        runner = runners["tender-implicit"]
        train_tokens, _ = corpus_splits
        seeds = [train_tokens[i * 31 : i * 31 + 12] for i in range(3)]
        warm = GenerationEngine(runner).generate(
            seeds, GenerationConfig(max_new_tokens=24)
        )
        repetitive = [
            np.concatenate([seed, continuation])
            for seed, continuation in zip(seeds, warm.generated)
        ]
        config = GenerationConfig(max_new_tokens=16)
        _, plain = serve_all(runner, repetitive, config)
        _, spec = serve_all(
            runner,
            repetitive,
            config,
            speculation=SpecConfig(drafter=PromptLookupDraft()),
        )
        assert spec.stats.decode_iterations < plain.stats.decode_iterations
        assert spec.stats.spec_verify_iterations > 0
        assert spec.stats.spec_accept_rate() > 0.0
        assert spec.stats.generated_tokens == plain.stats.generated_tokens

    def test_accept_stats_in_outputs(self, runners, prompts):
        runner = runners["tender-implicit"]
        outputs, scheduler = serve_all(
            runner,
            prompts,
            GenerationConfig(max_new_tokens=10),
            speculation=SpecConfig(drafter=PromptLookupDraft()),
        )
        assert scheduler.stats.spec_proposed_tokens == sum(
            output.spec_proposed_tokens for output in outputs.values()
        )
        assert scheduler.stats.spec_accepted_tokens == sum(
            output.spec_accepted_tokens for output in outputs.values()
        )
        rate = scheduler.stats.spec_accept_rate()
        assert 0.0 <= rate <= 1.0

    def test_drafter_released_per_request(self, runners, prompts):
        runner = runners["tender-implicit"]

        class RecordingDrafter(PromptLookupDraft):
            def __init__(self):
                super().__init__()
                self.released = []

            def release(self, request_id):
                self.released.append(request_id)

        drafter = RecordingDrafter()
        outputs, _ = serve_all(
            runner,
            prompts,
            GenerationConfig(max_new_tokens=6),
            speculation=SpecConfig(drafter=drafter),
        )
        assert sorted(drafter.released) == sorted(outputs)

    def test_speculation_never_writes_past_reservation(self, runners, prompts):
        """Tight budgets exercise the depth clamp at every remaining count."""
        runner = runners["tender-implicit"]
        for budget in (1, 2, 3):
            config = GenerationConfig(max_new_tokens=budget)
            baseline, _ = serve_all(runner, prompts, config)
            outputs, _ = serve_all(
                runner,
                prompts,
                config,
                speculation=SpecConfig(drafter=PromptLookupDraft(), draft_tokens=8, max_draft=8),
            )
            for request_id, reference in baseline.items():
                assert np.array_equal(reference.generated, outputs[request_id].generated)

    def test_engine_passes_speculation_through(self, runners, prompts):
        runner = runners["tender-implicit"]
        config = GenerationConfig(max_new_tokens=8)
        baseline = GenerationEngine(runner).generate(prompts, config)
        engine = GenerationEngine(
            runner, speculation=SpecConfig(drafter=PromptLookupDraft())
        )
        result = engine.generate(prompts, config)
        for reference, produced in zip(baseline.generated, result.generated):
            assert np.array_equal(reference, produced)
        assert np.array_equal(baseline.step_logits, result.step_logits)


class TestStatsGuards:
    def test_prefix_hit_rate_zero_when_idle(self, runners):
        scheduler = Scheduler(runners["float"])
        assert scheduler.stats.prefix_hit_rate() == 0.0
        assert scheduler.stats.spec_accept_rate() == 0.0
