"""Tests of the batched generation engine (sampling, stopping, batching)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SchemeRequest, available_schemes, build_runner
from repro.errors import ConfigurationError
from repro.models import TransformerRunner
from repro.serve import GenerationConfig, GenerationEngine, generate


@pytest.fixture(scope="module")
def prompts(corpus_splits):
    train_tokens, _ = corpus_splits
    return [train_tokens[:6], train_tokens[10:21], train_tokens[30:38]]


class TestGreedy:
    def test_shapes_and_determinism(self, tiny_weights, prompts):
        engine = GenerationEngine(TransformerRunner(tiny_weights))
        config = GenerationConfig(max_new_tokens=5)
        first = engine.generate(prompts, config)
        second = engine.generate(prompts, config)
        assert first.num_steps == 5
        assert first.step_logits.shape == (3, 5, tiny_weights.config.vocab_size)
        for a, b, prompt in zip(first.sequences, second.sequences, prompts):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a[: len(prompt)], prompt)
            assert len(a) == len(prompt) + 5

    def test_batching_does_not_change_tokens(self, tiny_weights, prompts):
        """A request's continuation is identical alone or inside a ragged batch."""
        engine = GenerationEngine(TransformerRunner(tiny_weights))
        config = GenerationConfig(max_new_tokens=4)
        batched = engine.generate(prompts, config)
        for row, prompt in enumerate(prompts):
            alone = engine.generate([prompt], config)
            np.testing.assert_array_equal(alone.generated[0], batched.generated[row])

    def test_convenience_wrapper(self, tiny_weights, prompts):
        result = generate(TransformerRunner(tiny_weights), prompts, GenerationConfig(max_new_tokens=2))
        assert result.num_steps == 2


class TestSampling:
    def test_top_k_is_seeded(self, tiny_weights, prompts):
        engine = GenerationEngine(TransformerRunner(tiny_weights))
        config = GenerationConfig(max_new_tokens=6, top_k=8, temperature=1.3, seed=5)
        first = engine.generate(prompts, config)
        second = engine.generate(prompts, config)
        for a, b in zip(first.generated, second.generated):
            np.testing.assert_array_equal(a, b)

    def test_different_seeds_diverge(self, tiny_weights, prompts):
        engine = GenerationEngine(TransformerRunner(tiny_weights))
        runs = [
            engine.generate(prompts, GenerationConfig(max_new_tokens=8, top_k=16, seed=seed))
            for seed in (1, 2, 3)
        ]
        flat = [np.concatenate(run.generated) for run in runs]
        assert any(not np.array_equal(flat[0], other) for other in flat[1:])

    def test_top_k_tokens_come_from_top_k(self, tiny_weights, prompts):
        engine = GenerationEngine(TransformerRunner(tiny_weights))
        config = GenerationConfig(max_new_tokens=3, top_k=4, seed=0)
        result = engine.generate(prompts, config)
        for row in range(len(prompts)):
            for step in range(result.num_steps):
                logits = result.step_logits[row, step]
                top4 = set(np.argsort(logits)[-4:].tolist())
                assert int(result.generated[row][step]) in top4


class TestStopping:
    def test_eos_truncates_continuations(self, tiny_weights, prompts):
        engine = GenerationEngine(TransformerRunner(tiny_weights))
        probe = engine.generate(prompts, GenerationConfig(max_new_tokens=6))
        eos = int(probe.generated[0][2])  # force an early stop for request 0
        result = engine.generate(prompts, GenerationConfig(max_new_tokens=6, eos_token=eos))
        for continuation in result.generated:
            hits = np.nonzero(continuation == eos)[0]
            if hits.size:
                assert hits[0] == len(continuation) - 1  # nothing kept past eos
        assert len(result.generated[0]) == 3

    def test_all_finished_stops_decoding_early(self, tiny_weights, prompts):
        engine = GenerationEngine(TransformerRunner(tiny_weights))
        probe = engine.generate(prompts, GenerationConfig(max_new_tokens=1))
        # Every request's very first token is its eos -> exactly one step runs.
        eos_candidates = {int(g[0]) for g in probe.generated}
        if len(eos_candidates) == 1:
            result = engine.generate(
                prompts, GenerationConfig(max_new_tokens=10, eos_token=eos_candidates.pop())
            )
            assert result.num_steps == 1

    def test_generation_clipped_at_max_seq_len(self, tiny_weights, corpus_splits):
        train_tokens, _ = corpus_splits
        max_seq_len = tiny_weights.config.max_seq_len
        prompt = train_tokens[: max_seq_len - 3]
        engine = GenerationEngine(TransformerRunner(tiny_weights))
        result = engine.generate([prompt], GenerationConfig(max_new_tokens=50))
        assert result.num_steps == 3
        assert len(result.sequences[0]) == max_seq_len

    def test_prompt_at_max_seq_len_rejected(self, tiny_weights, corpus_splits):
        train_tokens, _ = corpus_splits
        engine = GenerationEngine(TransformerRunner(tiny_weights))
        with pytest.raises(ConfigurationError):
            engine.generate([train_tokens[: tiny_weights.config.max_seq_len]])

    def test_budgets_are_per_request(self, tiny_weights, corpus_splits):
        """A short prompt keeps its full budget when batched with a near-max one."""
        train_tokens, _ = corpus_splits
        max_seq_len = tiny_weights.config.max_seq_len
        short = train_tokens[:6]
        near_max = train_tokens[10 : 10 + max_seq_len - 2]
        engine = GenerationEngine(TransformerRunner(tiny_weights))
        config = GenerationConfig(max_new_tokens=8)
        result = engine.generate([short, near_max], config)
        assert len(result.generated[0]) == 8          # full budget for the short prompt
        assert len(result.generated[1]) == 2          # clipped at max_seq_len
        assert len(result.sequences[1]) == max_seq_len
        # The short request's tokens match what it gets when batched alone.
        alone = engine.generate([short], config)
        np.testing.assert_array_equal(alone.generated[0], result.generated[0])
        # Steps past a row's budget are zeroed, not garbage.
        assert not result.step_logits[1, 2:].any()


class TestValidation:
    def test_empty_batch_rejected(self, tiny_weights):
        with pytest.raises(ConfigurationError):
            GenerationEngine(TransformerRunner(tiny_weights)).generate([])

    def test_empty_prompt_rejected(self, tiny_weights, prompts):
        with pytest.raises(ConfigurationError):
            GenerationEngine(TransformerRunner(tiny_weights)).generate([np.array([], dtype=np.int64)])

    def test_out_of_vocab_prompt_rejected(self, tiny_weights):
        bad = np.array([tiny_weights.config.vocab_size + 1])
        with pytest.raises(ConfigurationError):
            GenerationEngine(TransformerRunner(tiny_weights)).generate([bad])

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GenerationConfig(max_new_tokens=0)
        with pytest.raises(ConfigurationError):
            GenerationConfig(top_k=-1)
        with pytest.raises(ConfigurationError):
            GenerationConfig(temperature=0.0)


class TestRegistrySchemes:
    @pytest.mark.parametrize("scheme", ["per-tensor", "per-row", "SmoothQuant", "ANT", "OliVe"])
    def test_generate_runs_on_registry_baselines(self, scheme, outlier_weights, calibration, prompts):
        request = SchemeRequest(weights=outlier_weights, calibration=calibration, bits=8)
        runner = build_runner(scheme, request)
        result = GenerationEngine(runner).generate(prompts, GenerationConfig(max_new_tokens=3))
        vocab = outlier_weights.config.vocab_size
        assert result.num_steps == 3
        for continuation in result.generated:
            assert continuation.shape == (3,)
            assert continuation.min() >= 0 and continuation.max() < vocab

    def test_scheme_registry_exposes_generation_candidates(self):
        names = available_schemes()
        assert "Tender" in names and "SmoothQuant" in names
