"""Serving observability: lifecycle traces, chaos export, stats publishing.

The acceptance scenario for the observability layer is a full chaos run —
two sharded replicas with collective corruption, a scripted replica kill,
and priority preemption — exported as one Chrome trace JSON in which a
preempted-and-recovered request's lifecycle is reconstructable *across
replicas* by filtering on its pool-level correlation id.  These tests run
that scenario and parse the export; the tracer/metrics primitives are
pinned separately in ``tests/obs/``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.models.inference import TransformerRunner
from repro.models.weights import (
    AttentionWeights,
    BlockWeights,
    FeedForwardWeights,
    LayerNormWeights,
    ModelWeights,
)
from repro.nn import TransformerConfig
from repro.obs import CountingClock, FlightRecorder, MetricsRegistry, Tracer
from repro.serve import (
    CollectiveFaultInjector,
    CollectiveGroup,
    FaultInjector,
    GenerationConfig,
    ReplicaPool,
    Scheduler,
    ShardedRunner,
)
from repro.serve.collective import CollectiveStats
from repro.serve.cluster import _POOL_STAT_KEYS


@pytest.fixture(scope="module")
def chaos_runner():
    """A random-weight runner (no training) for the chaos-trace scenario."""
    config = TransformerConfig(
        vocab_size=64, d_model=32, num_heads=2, num_layers=2, d_ff=64, max_seq_len=128, seed=0
    )
    rng = np.random.default_rng(7)

    def dense(shape):
        return rng.normal(scale=0.25, size=shape)

    def norm():
        return LayerNormWeights(gain=np.ones(config.d_model), bias=np.zeros(config.d_model))

    blocks = [
        BlockWeights(
            ln_attn=norm(),
            attn=AttentionWeights(
                wq=dense((config.d_model, config.d_model)), bq=np.zeros(config.d_model),
                wk=dense((config.d_model, config.d_model)), bk=np.zeros(config.d_model),
                wv=dense((config.d_model, config.d_model)), bv=np.zeros(config.d_model),
                wo=dense((config.d_model, config.d_model)), bo=np.zeros(config.d_model),
            ),
            ln_ffn=norm(),
            ffn=FeedForwardWeights(
                w1=dense((config.d_model, config.d_ff)), b1=np.zeros(config.d_ff),
                w2=dense((config.d_ff, config.d_model)), b2=np.zeros(config.d_model),
            ),
        )
        for _ in range(config.num_layers)
    ]
    weights = ModelWeights(
        config=config,
        token_embedding=dense((config.vocab_size, config.d_model)),
        position_embedding=dense((config.max_seq_len, config.d_model)),
        blocks=blocks,
        ln_final=norm(),
        lm_head=dense((config.d_model, config.vocab_size)),
    )
    return TransformerRunner(weights)


def _chaos_prompts():
    """Six background prompts plus three urgent late arrivals (fixed seed)."""
    rng = np.random.default_rng(11)
    background = [rng.integers(0, 64, size=18) for _ in range(6)]
    urgent = [rng.integers(0, 64, size=14) for _ in range(3)]
    return background, urgent


def _run_chaos(solo, tracer):
    """One full chaos run: 2 sharded replicas, corruption, a kill, preemption."""

    def factory(replica_id: int):
        injector = CollectiveFaultInjector(seed=replica_id, corrupt_rate=0.05, max_kills=0)
        group = CollectiveGroup(
            2,
            fault_injector=injector,
            max_retries=4,
            tracer=tracer,
            trace_track=f"collective{replica_id}",
        )
        return ShardedRunner(solo, 2, group=group)

    pool = ReplicaPool(
        solo,
        num_replicas=2,
        config=GenerationConfig(max_new_tokens=6),
        runner_factory=factory,
        seed=0,
        fault_injector=FaultInjector(seed=0, kill_at={3: 0}),
        max_batch_size=2,
        block_size=8,
        prefix_cache=True,
        preemption=True,
        record_logits=False,
        tracer=tracer,
    )
    background, urgent = _chaos_prompts()
    for prompt in background:
        pool.submit(prompt, priority=1)
    for prompt in urgent:
        pool.submit(prompt, priority=0, arrival_time=3.0)
    outputs = pool.run()
    return pool, outputs


class TestChaosTraceAcceptance:
    def test_recovered_lifecycle_reconstructable_from_chrome_export(
        self, chaos_runner, tmp_path
    ):
        tracer = Tracer(clock=CountingClock(), recorder=FlightRecorder(capacity=128))
        pool, outputs = _run_chaos(chaos_runner, tracer)

        # The chaos actually happened: a kill, recoveries, preemptions, and
        # corrupted collectives caught on the wire.
        assert pool.cluster_stats.failures >= 1
        assert pool.cluster_stats.recoveries >= 1
        assert pool.stats["preemptions"] >= 1
        assert len(tracer.events_named("collective.corruption")) >= 1
        assert len(outputs) == 9

        path = tmp_path / "chaos_trace.json"
        tracer.export_chrome_trace(path)
        payload = json.loads(path.read_text())
        rows = payload["traceEvents"]

        # Track metadata: every replica renders as its own process row.
        track_by_pid = {
            row["pid"]: row["args"]["name"] for row in rows if row["ph"] == "M"
        }
        assert {"replica0", "replica1", "pool"} <= set(track_by_pid.values())

        # Reconstruct one preempted-and-recovered request purely from the
        # export: find a correlation id whose lifecycle crosses two replica
        # tracks through a preemption and a recovery.
        lifecycles = {}
        for row in rows:
            corr = row.get("args", {}).get("corr")
            if corr is not None and row["name"].startswith("request."):
                lifecycles.setdefault(corr, []).append(
                    (track_by_pid[row["pid"]], row["name"])
                )
        recovered = {
            corr: events
            for corr, events in lifecycles.items()
            if ("pool", "request.recovered") in events
            and any(name == "request.preempted" for _, name in events)
        }
        assert recovered, f"no preempted-and-recovered lifecycle in {sorted(lifecycles)}"
        corr, events = sorted(recovered.items())[0]
        names = [name for _, name in events]
        replicas = {track for track, _ in events if track.startswith("replica")}
        assert len(replicas) == 2, f"lifecycle {corr} stayed on {replicas}"
        # Causal order: queued before admitted before first token before the
        # preemption; the recovery re-queues it on the surviving replica and
        # it finishes there.
        assert names.index("request.queued") < names.index("request.admitted")
        assert names.index("request.admitted") < names.index("request.preempted")
        assert names.index("request.preempted") < names.index("request.recovered")
        assert names[-1] == "request.finished"
        first_replica = events[0][0]
        last_replica = events[-1][0]
        assert first_replica != last_replica

        # Timestamps are monotone within the lifecycle (CountingClock).
        stamps = [
            row["ts"]
            for row in rows
            if row.get("args", {}).get("corr") == corr and row["ph"] != "M"
        ]
        assert stamps == sorted(stamps)

    def test_chaos_export_is_byte_identical_across_runs(self, chaos_runner, tmp_path):
        def run(path):
            tracer = Tracer(clock=CountingClock(), recorder=FlightRecorder(capacity=128))
            _run_chaos(chaos_runner, tracer)
            tracer.export_chrome_trace(path)
            return path.read_bytes()

        first = run(tmp_path / "run_a.json")
        second = run(tmp_path / "run_b.json")
        assert first == second

    def test_flight_recorder_tape_is_bounded_and_newest(self, chaos_runner):
        tracer = Tracer(clock=CountingClock(), recorder=FlightRecorder(capacity=64))
        _run_chaos(chaos_runner, tracer)
        recorder = tracer.recorder
        assert recorder.recorded == len(tracer.events)
        assert recorder.recorded > 64  # the run overflows the ring...
        tape = recorder.events()
        assert len(tape) == 64  # ...which keeps exactly the newest 64
        assert tape == tracer.events[-64:]


class TestSchedulerLifecycle:
    """Single-scheduler tracing: parity, balance, and the span taxonomy."""

    def _prompts(self):
        rng = np.random.default_rng(5)
        return [rng.integers(0, 64, size=12) for _ in range(4)]

    def _serve(self, runner, tracer):
        scheduler = Scheduler(
            runner,
            GenerationConfig(max_new_tokens=4),
            max_batch_size=2,
            block_size=8,
            prefix_cache=True,
            prefill_chunk=8,
            record_logits=False,
            tracer=tracer,
        )
        for prompt in self._prompts():
            scheduler.submit(prompt)
        return {o.request_id: o.generated for o in scheduler.run()}

    def test_tracing_does_not_perturb_tokens(self, chaos_runner):
        untraced = self._serve(chaos_runner, None)
        traced = self._serve(chaos_runner, Tracer(clock=CountingClock()))
        assert set(untraced) == set(traced)
        for request_id in untraced:
            np.testing.assert_array_equal(untraced[request_id], traced[request_id])

    def test_lifecycle_and_cache_events_emitted(self, chaos_runner):
        tracer = Tracer(clock=CountingClock())
        self._serve(chaos_runner, tracer)
        for name in (
            "request.queued",
            "request.admitted",
            "request.first_token",
            "request.finished",
            "prefill_chunk",
            "decode_step",
            "cache.block_alloc",
        ):
            assert tracer.events_named(name), f"no {name} events"
        # Every request's lifecycle is complete and correlated.
        for request_id in range(4):
            names = [e.name for e in tracer.events_for(f"r{request_id}")]
            assert names[0] == "request.queued"
            assert "request.admitted" in names
            assert "request.first_token" in names
            assert names[-1] == "request.finished"

    def test_spans_are_balanced_per_track(self, chaos_runner):
        tracer = Tracer(clock=CountingClock())
        self._serve(chaos_runner, tracer)
        for track in tracer.tracks():
            begins = sum(
                1 for e in tracer.events if e.track == track and e.phase == "B"
            )
            ends = sum(1 for e in tracer.events if e.track == track and e.phase == "E")
            assert begins == ends, f"unbalanced spans on {track}"


class TestTtftPercentileEdges:
    """Satellite: explicit quantile-edge semantics on SchedulerStats."""

    def _stats_with(self, samples_by_class):
        from repro.serve.scheduler import SchedulerStats

        stats = SchedulerStats()
        stats.ttft_by_class = {k: list(v) for k, v in samples_by_class.items()}
        return stats

    def test_edge_fractions_on_known_samples(self):
        stats = self._stats_with({0: [1.0, 2.0, 3.0, 4.0]})
        assert stats.ttft_percentile(0.0) == 1.0
        assert stats.ttft_percentile(0.5) == 2.5
        assert stats.ttft_percentile(1.0) == 4.0

    def test_single_sample_returns_it_for_any_fraction(self):
        stats = self._stats_with({1: [7.0]})
        for q in (0.0, 0.5, 0.99, 1.0):
            assert stats.ttft_percentile(q, priority=1) == 7.0

    def test_empty_and_missing_classes_return_zero(self):
        stats = self._stats_with({0: [5.0], 2: []})
        assert stats.ttft_percentile(0.5, priority=2) == 0.0
        assert stats.ttft_percentile(0.5, priority=9) == 0.0
        assert self._stats_with({}).ttft_percentile(1.0) == 0.0

    def test_fraction_out_of_range_raises(self):
        stats = self._stats_with({0: [1.0]})
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            stats.ttft_percentile(50.0)
        with pytest.raises(ValueError):
            stats.ttft_percentile(-0.1)

    def test_class_filter_separates_priorities(self):
        stats = self._stats_with({0: [1.0, 1.0], 1: [9.0, 9.0]})
        assert stats.ttft_percentile(0.5, priority=0) == 1.0
        assert stats.ttft_percentile(0.5, priority=1) == 9.0
        assert stats.ttft_percentile(1.0) == 9.0  # merged across classes


class TestStatsMergeAudit:
    """Satellite: pool stats merge-of-merges survives a second recovery cycle."""

    def test_pool_totals_conserve_retired_work_after_two_kills(self, chaos_runner):
        pool = ReplicaPool(
            chaos_runner,
            num_replicas=3,
            config=GenerationConfig(max_new_tokens=5),
            seed=0,
            fault_injector=FaultInjector(seed=0, kill_at={2: 0, 5: 1}),
            max_batch_size=2,
            block_size=8,
            prefix_cache=True,
            preemption=True,
            record_logits=False,
        )
        background, urgent = _chaos_prompts()
        for prompt in background:
            pool.submit(prompt, priority=1)
        for prompt in urgent:
            pool.submit(prompt, priority=0, arrival_time=3.0)
        outputs = pool.run()
        assert len(outputs) == 9
        assert pool.cluster_stats.failures >= 2  # both kills landed

        # The merged view must equal retired (pre-crash) totals plus every
        # live scheduler — merging a second crash's retirement on top of the
        # first must not double-count or drop either.
        live = pool.replica_stats()
        for key in _POOL_STAT_KEYS:
            expected = pool._retired_stats[key] + sum(getattr(s, key) for s in live)
            assert pool.stats[key] == expected, key

    def test_registry_merge_is_associative_across_replicas(self, chaos_runner):
        pool = ReplicaPool(
            chaos_runner,
            num_replicas=3,
            config=GenerationConfig(max_new_tokens=4),
            seed=0,
            max_batch_size=2,
            block_size=8,
            record_logits=False,
        )
        background, _ = _chaos_prompts()
        for prompt in background:
            pool.submit(prompt)
        pool.run()

        # merge(merge(r0, r1), r2) must equal merge(r0, merge(r1, r2)) —
        # the merge-of-merges path pool dashboards use when per-replica
        # registries fold through intermediate aggregates.
        per_replica = []
        for stats in pool.replica_stats():
            registry = MetricsRegistry()
            stats.publish(registry)
            per_replica.append(registry)

        left_first = MetricsRegistry()
        left_first.merge(per_replica[0])
        left_first.merge(per_replica[1])
        left_assoc = MetricsRegistry()
        left_assoc.merge(left_first)
        left_assoc.merge(per_replica[2])

        right_first = MetricsRegistry()
        right_first.merge(per_replica[1])
        right_first.merge(per_replica[2])
        right_assoc = MetricsRegistry()
        right_assoc.merge(per_replica[0])
        right_assoc.merge(right_first)

        snap = left_assoc.snapshot()
        assert snap == right_assoc.snapshot()
        assert snap["scheduler.completed_requests"] == sum(
            s.completed_requests for s in pool.replica_stats()
        )
        assert snap["scheduler.ttft_ticks_count"] == sum(
            len(s.ttft_values()) for s in pool.replica_stats()
        )

    def test_cluster_stats_publish(self):
        from repro.serve.cluster import ClusterStats

        stats = ClusterStats(
            iterations=10,
            failures=2,
            recoveries=3,
            degraded_requests=1,
            degraded_causes={"retry_budget_exhausted": 1},
        )
        registry = MetricsRegistry()
        stats.publish(registry)
        snap = registry.snapshot()
        assert snap["pool.iterations"] == 10
        assert snap["pool.failures"] == 2
        assert snap["pool.recoveries"] == 3
        assert snap["pool.degraded.retry_budget_exhausted"] == 1


class TestCollectiveStatsFold:
    """Satellite: CollectiveStats aggregates with ``+=`` and publishes."""

    def test_iadd_folds_field_wise(self):
        total = CollectiveStats(collectives=2, retries=1, simulated_ms=0.5)
        total += CollectiveStats(
            collectives=3, messages=8, retries=2, corruption_caught=4, simulated_ms=1.5
        )
        assert total.collectives == 5
        assert total.messages == 8
        assert total.retries == 3
        assert total.corruption_caught == 4
        assert total.simulated_ms == pytest.approx(2.0)

    def test_iadd_rejects_other_types(self):
        stats = CollectiveStats()
        with pytest.raises(TypeError):
            stats += 5

    def test_publish_exposes_every_field(self):
        stats = CollectiveStats(collectives=1, bytes_moved=256, timeouts=2)
        registry = MetricsRegistry()
        stats.publish(registry)
        snap = registry.snapshot()
        assert snap["collective.collectives"] == 1
        assert snap["collective.bytes_moved"] == 256
        assert snap["collective.timeouts"] == 2
        assert snap["collective.hedges"] == 0
