"""Tests of prefix-cached, chunked-prefill serving over the paged KV cache.

The correctness bar, matching the house style: for Tender's integer
pipeline the generated tokens (and step logits) must be **bit-identical**
with the prefix cache on vs off — including across copy-on-write forks,
LRU-evicted-then-recomputed prefixes, and chunked prefill.  The FP
baseline's logits may differ by BLAS row-blocking noise only (its tokens
still match).  The one scoped exception, as everywhere in this repo, is
Tender ``quantize_attention=True``: its *dynamic* attention statistics see
the prefill partitioning itself, so prefix hits legitimately change its
quantization schedule (tokens must still be well-formed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TenderConfig, TenderQuantizer
from repro.errors import ConfigurationError
from repro.models import TransformerRunner
from repro.serve import GenerationConfig, GenerationEngine, KVCache, Request, Scheduler


def tender_runner(weights, calibration, implicit: bool) -> TransformerRunner:
    config = TenderConfig(bits=8, num_groups=8, row_chunk_size=8)
    return TenderQuantizer(config, implicit=implicit).quantize(weights, calibration)


@pytest.fixture(scope="module")
def runners(outlier_weights, calibration):
    return {
        "float": TransformerRunner(outlier_weights),
        "tender-implicit": tender_runner(outlier_weights, calibration, implicit=True),
        "tender-explicit": tender_runner(outlier_weights, calibration, implicit=False),
    }


@pytest.fixture(scope="module")
def staggered_prompts(corpus_splits):
    """Ragged prompts sharing staggered prefixes (and one disjoint prompt).

    Prompt lengths straddle block boundaries (block size 8 in these tests):
    template A appears whole, extended, and truncated mid-block; template B
    tests an exact-multiple length (the COW-boundary case); the last prompt
    shares nothing.
    """
    train_tokens, _ = corpus_splits
    template_a = train_tokens[:19]
    template_b = train_tokens[40:56]  # 16 tokens: exactly two block_size=8 blocks
    return [
        np.concatenate([template_a, train_tokens[100:104]]),
        np.concatenate([template_a, train_tokens[120:131]]),
        template_a[:13],
        template_b,
        np.concatenate([template_b, train_tokens[140:147]]),
        template_b.copy(),
        train_tokens[200:217],
    ]


def serve_all(runner, prompts, config, *, prefix_cache, prefill_chunk=None, **kwargs):
    scheduler = Scheduler(
        runner,
        config,
        max_batch_size=kwargs.pop("max_batch_size", 3),
        block_size=kwargs.pop("block_size", 8),
        prefix_cache=prefix_cache,
        prefill_chunk=prefill_chunk,
        **kwargs,
    )
    for prompt in prompts:
        scheduler.submit(prompt)
    outputs = {output.request_id: output for output in scheduler.run()}
    return outputs, scheduler


class TestPrefixCacheParity:
    """Cache on vs off: identical tokens, Tender logits bit-identical."""

    @pytest.mark.parametrize("name", ["float", "tender-implicit", "tender-explicit"])
    @pytest.mark.parametrize("prefill_chunk", [None, 5])
    def test_greedy_parity_sweep(self, name, prefill_chunk, runners, staggered_prompts):
        runner = runners[name]
        config = GenerationConfig(max_new_tokens=5)
        off, scheduler_off = serve_all(runner, staggered_prompts, config, prefix_cache=False)
        on, scheduler_on = serve_all(
            runner, staggered_prompts, config, prefix_cache=True, prefill_chunk=prefill_chunk
        )
        assert scheduler_on.stats.prefix_hit_tokens > 0
        assert scheduler_on.stats.prefill_tokens < scheduler_off.stats.prefill_tokens
        for request_id in off:
            np.testing.assert_array_equal(on[request_id].generated, off[request_id].generated)
            np.testing.assert_array_equal(on[request_id].sequence, off[request_id].sequence)
            if name.startswith("tender"):
                np.testing.assert_array_equal(
                    on[request_id].step_logits, off[request_id].step_logits
                )
            else:
                np.testing.assert_allclose(
                    on[request_id].step_logits, off[request_id].step_logits, rtol=0.0, atol=1e-12
                )

    @pytest.mark.parametrize("name", ["float", "tender-implicit"])
    def test_seeded_top_k_parity(self, name, runners, staggered_prompts):
        """Sampling draws the same tokens whether or not KV came from cache."""
        runner = runners[name]
        config = GenerationConfig(max_new_tokens=5, top_k=8, temperature=1.2, seed=23)
        off, _ = serve_all(runner, staggered_prompts, config, prefix_cache=False)
        on, _ = serve_all(runner, staggered_prompts, config, prefix_cache=True)
        for request_id in off:
            np.testing.assert_array_equal(on[request_id].generated, off[request_id].generated)

    def test_cached_outputs_match_solo_generate(self, runners, staggered_prompts):
        """Prefix hits keep the scheduler bit-identical to solo generate()."""
        runner = runners["tender-implicit"]
        config = GenerationConfig(max_new_tokens=4)
        on, _ = serve_all(runner, staggered_prompts, config, prefix_cache=True)
        engine = GenerationEngine(runner)
        for request_id, prompt in enumerate(staggered_prompts):
            alone = engine.generate([prompt], config)
            np.testing.assert_array_equal(on[request_id].generated, alone.generated[0])
            np.testing.assert_array_equal(on[request_id].step_logits, alone.step_logits[0])

    def test_engine_prefix_cache_passthrough(self, runners, staggered_prompts):
        """GenerationEngine(prefix_cache=True) matches the plain engine."""
        runner = runners["tender-explicit"]
        config = GenerationConfig(max_new_tokens=4)
        plain = GenerationEngine(runner).generate(staggered_prompts, config)
        cached = GenerationEngine(runner, prefix_cache=True).generate(staggered_prompts, config)
        chunked = GenerationEngine(runner, prefix_cache=True, prefill_chunk=6).generate(
            staggered_prompts, config
        )
        for row in range(len(staggered_prompts)):
            np.testing.assert_array_equal(cached.generated[row], plain.generated[row])
            np.testing.assert_array_equal(chunked.generated[row], plain.generated[row])
            np.testing.assert_array_equal(cached.step_logits[row], plain.step_logits[row])

    def test_tender_dynamic_attention_stays_well_formed(
        self, outlier_weights, calibration, staggered_prompts
    ):
        """Tender "all" under prefix hits: a different (per-chunk) schedule,
        documented exception to bit-parity — outputs must stay finite/valid."""
        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=8, quantize_attention=True)
        runner = TenderQuantizer(config).quantize(outlier_weights, calibration)
        on, scheduler = serve_all(
            runner, staggered_prompts, GenerationConfig(max_new_tokens=4), prefix_cache=True
        )
        assert scheduler.stats.prefix_hit_tokens > 0
        vocab = runner.config.vocab_size
        for output in on.values():
            assert len(output.generated) == 4
            assert all(0 <= token < vocab for token in output.generated)


class TestRefcountAndCow:
    """Reference counting, copy-on-write, and LRU eviction under pressure."""

    def test_identical_prompts_share_blocks(self, runners, corpus_splits):
        """While both requests are live, their full prefix blocks coincide."""
        train_tokens, _ = corpus_splits
        runner = runners["float"]
        prompt = train_tokens[:21]  # blocks 0/1 full (8+8), block 2 partial
        scheduler = Scheduler(
            runner, GenerationConfig(max_new_tokens=8), max_batch_size=2,
            block_size=8, prefix_cache=True,
        )
        first = scheduler.submit(prompt)
        second = scheduler.submit(prompt.copy())
        scheduler.step()  # admit + prefill both, first decode
        cache = scheduler.cache
        tables = [cache.block_table(slot) for slot in cache.active_slots]
        assert tables[0][:2] == tables[1][:2]  # shared full blocks
        assert tables[0][2] != tables[1][2]  # private partial block
        for block in tables[0][:2]:
            assert cache.ref_count(block) == 2
        outputs = {o.request_id: o for o in scheduler.run()}
        np.testing.assert_array_equal(outputs[first].generated, outputs[second].generated)
        assert outputs[second].prefix_hit_tokens == 16

    def test_fork_mid_block_on_exact_multiple_prompt(self, runners, corpus_splits):
        """A fully-matched final block is COW-forked for the recomputed token."""
        train_tokens, _ = corpus_splits
        runner = runners["float"]
        prompt = train_tokens[:16]  # exactly two blocks of 8
        scheduler = Scheduler(
            runner, GenerationConfig(max_new_tokens=6), max_batch_size=2,
            block_size=8, prefix_cache=True,
        )
        first = scheduler.submit(prompt)
        second = scheduler.submit(prompt.copy())
        scheduler.step()
        cache = scheduler.cache
        tables = [cache.block_table(slot) for slot in cache.active_slots]
        assert tables[0][0] == tables[1][0]  # first block shared
        assert tables[0][1] != tables[1][1]  # final block forked (position 15 rewritten)
        outputs = {o.request_id: o for o in scheduler.run()}
        np.testing.assert_array_equal(outputs[first].generated, outputs[second].generated)
        assert outputs[second].prefix_hit_tokens == 15  # capped at prompt_len - 1

    def test_freed_prefixes_stay_matchable_until_reclaimed(self, runners, corpus_splits):
        """Blocks of a finished request serve later arrivals from the LRU."""
        train_tokens, _ = corpus_splits
        runner = runners["float"]
        prompt = np.concatenate([train_tokens[:16], train_tokens[60:64]])
        config = GenerationConfig(max_new_tokens=2)
        scheduler = Scheduler(
            runner, config, max_batch_size=1, block_size=8, prefix_cache=True
        )
        first = scheduler.submit(prompt)
        second = scheduler.submit(prompt.copy())  # served strictly after the first
        outputs = {o.request_id: o for o in scheduler.run()}
        assert scheduler.cache.active_slots == []
        assert scheduler.cache.cached_block_count > 0  # prefix survives its owner
        assert outputs[second].prefix_hit_tokens == 16
        np.testing.assert_array_equal(outputs[first].generated, outputs[second].generated)

    def test_eviction_under_pressure_then_recompute(self, runners, corpus_splits):
        """A reclaimed prefix is recomputed transparently and re-published."""
        train_tokens, _ = corpus_splits
        runner = runners["tender-implicit"]
        template = train_tokens[:16]
        cached_prompt = np.concatenate([template, train_tokens[60:66]])
        # Each prompt needs ceil((22 + 2 - 1) / 8) = 3 blocks; a 4-block pool
        # forces every admission to reclaim the previous request's blocks.
        evictor_prompts = [train_tokens[80 + i * 29 : 102 + i * 29] for i in range(2)]
        config = GenerationConfig(max_new_tokens=2)
        scheduler = Scheduler(
            runner, config, max_batch_size=1, block_size=8, num_blocks=4, prefix_cache=True
        )
        ids = [scheduler.submit(cached_prompt)]
        for evictor in evictor_prompts:
            ids.append(scheduler.submit(evictor))
        readmitted = scheduler.submit(cached_prompt.copy())
        outputs = {o.request_id: o for o in scheduler.run()}
        # The evictors flushed the template from the 4-block pool, so the
        # re-admission was a cold prefill (recompute), then re-published.
        assert outputs[readmitted].prefix_hit_tokens == 0
        np.testing.assert_array_equal(
            outputs[readmitted].generated, outputs[ids[0]].generated
        )
        np.testing.assert_array_equal(
            outputs[readmitted].step_logits, outputs[ids[0]].step_logits
        )

    def test_cow_write_into_shared_block_isolates_the_reader(self, rng):
        """Direct pool check: writing a shared block forks it for the writer."""
        from repro.serve import PagedKVCache

        pool = PagedKVCache(num_layers=2, num_heads=2, d_head=4, block_size=4, num_blocks=6)
        tokens = np.arange(8)
        owner = pool.reserve(8)
        payload = rng.normal(size=(1, 2, 8, 4))
        pool.write(0, [owner], payload, payload, np.arange(8)[None, :])
        pool.set_length(owner, 8)
        pool.publish_prefix(owner, tokens)
        matched = pool.match_prefix(tokens)
        assert matched == pool.block_table(owner)
        sharer = pool.reserve(8, shared=matched)
        assert pool.ref_count(matched[0]) == 2
        # The sharer rewrites position 5 (inside the second shared block).
        overwrite = rng.normal(size=(1, 2, 1, 4))
        pool.write(0, [sharer], overwrite, overwrite, np.array([[5]]))
        assert pool.block_table(sharer)[0] == matched[0]  # untouched block still shared
        assert pool.block_table(sharer)[1] != matched[1]  # written block forked
        assert pool.ref_count(matched[1]) == 1
        owner_keys, _ = pool.gather(0, [owner], 8)
        np.testing.assert_array_equal(owner_keys, payload)  # owner unaffected
        sharer_keys, _ = pool.gather(0, [sharer], 8)
        np.testing.assert_array_equal(sharer_keys[0, :, 5], overwrite[0, :, 0])
        # COW copies every layer, not just the written one.
        np.testing.assert_array_equal(pool.gather(1, [sharer], 8)[0], np.zeros((1, 2, 8, 4)))

    def test_private_tail_revival_cannot_be_shared_out_from_under_the_writer(self, rng):
        """A revived sole-owner tail block is de-indexed at reservation.

        Otherwise a later reservation could share it (refcount 2) before the
        owner writes its final prompt token, forcing a copy-on-write fork no
        admission ever budgeted a free block for — on a full pool that write
        would die mid-forward instead of being refused at admission.
        """
        from repro.serve import PagedKVCache

        pool = PagedKVCache(num_layers=1, num_heads=1, d_head=2, block_size=4, num_blocks=4)
        tokens = np.arange(12)
        owner = pool.reserve(8)
        payload = rng.normal(size=(1, 1, 8, 2))
        pool.write(0, [owner], payload, payload, np.arange(8)[None, :])
        pool.publish_prefix(owner, tokens[:8])
        pool.free(owner)
        # Full-match revival with a private tail (prompt length == 2 blocks).
        writer = pool.reserve(8, shared=pool.match_prefix(tokens[:8]), private_tail=True)
        # The tail block left the radix: longer prompts match one block only.
        assert len(pool.match_prefix(tokens)) == 1
        # A second reservation fills the pool around the writer...
        other = pool.reserve(12, shared=pool.match_prefix(tokens))
        assert pool.free_block_count == 0
        # ...and the deferred final-token write still succeeds in place.
        tail_write = rng.normal(size=(1, 1, 1, 2))
        pool.write(0, [writer], tail_write, tail_write, np.array([[7]]))
        keys, _ = pool.gather(0, [writer], 8)
        np.testing.assert_array_equal(keys[0, :, 7], tail_write[0, :, 0])
        pool.free(other)

    def test_exhausted_lazy_cow_raises_resource_error(self, rng):
        """Direct pool misuse: a fork on a full pool fails loudly, not with
        StopIteration."""
        from repro.errors import ResourceExhaustedError
        from repro.serve import PagedKVCache

        pool = PagedKVCache(num_layers=1, num_heads=1, d_head=2, block_size=4, num_blocks=2)
        tokens = np.arange(4)
        owner = pool.reserve(4)
        payload = rng.normal(size=(1, 1, 4, 2))
        pool.write(0, [owner], payload, payload, np.arange(4)[None, :])
        pool.publish_prefix(owner, tokens)
        sharer = pool.reserve(8, shared=pool.match_prefix(tokens))  # pool now full
        assert pool.free_block_count == 0
        with pytest.raises(ResourceExhaustedError):
            pool.write(0, [sharer], payload[:, :, :1], payload[:, :, :1], np.array([[2]]))

    def test_reclamation_shrinks_published_chains_leaf_first(self, rng):
        """Memory pressure consumes a cached prefix from its tail, one block
        at a time, because ``free`` releases tables in reverse order."""
        from repro.serve import PagedKVCache

        pool = PagedKVCache(num_layers=1, num_heads=1, d_head=2, block_size=4, num_blocks=3)
        tokens = np.arange(12)
        slot = pool.reserve(12)
        payload = rng.normal(size=(1, 1, 12, 2))
        pool.write(0, [slot], payload, payload, np.arange(12)[None, :])
        pool.publish_prefix(slot, tokens)
        assert pool.cached_block_count == 3
        pool.free(slot)
        assert len(pool.match_prefix(tokens)) == 3  # still matchable from the LRU
        # One block of pressure reclaims the chain's LEAF: the first two
        # blocks of the prefix stay matchable.
        fresh = pool.reserve(4)
        assert pool.cached_block_count == 2
        assert len(pool.match_prefix(tokens)) == 2
        pool.free(fresh)

    def test_reclaiming_a_parent_deindexes_descendants(self, rng):
        """A reclaimed radix parent takes its (unreachable) children with it.

        The writer's table keeps a live reference to the chain's head while
        the published tail sits on the LRU; reclaiming the *middle* block
        must also de-index the tail, whose chained identity it anchored.
        """
        from repro.serve import PagedKVCache

        pool = PagedKVCache(num_layers=1, num_heads=1, d_head=2, block_size=4, num_blocks=4)
        tokens = np.arange(12)
        slot = pool.reserve(12)
        payload = rng.normal(size=(1, 1, 12, 2))
        pool.write(0, [slot], payload, payload, np.arange(12)[None, :])
        pool.publish_prefix(slot, tokens)
        pool.free(slot)
        # Revive only the chain's head; the middle + tail stay on the LRU.
        holder = pool.reserve(4, shared=pool.match_prefix(tokens[:4]))
        # Pressure for three fresh blocks consumes the never-used block, the
        # unreferenced leaf, then the middle block — whose de-index must
        # drop nothing else (its child is already gone) while the
        # still-referenced head survives.
        fresh = pool.reserve(12)
        assert pool.cached_block_count == 1
        assert len(pool.match_prefix(tokens)) == 1
        assert pool.match_prefix(tokens) == pool.block_table(holder)
        pool.free(fresh)
        pool.free(holder)

    def test_dirty_blocks_are_scrubbed_only_when_reused_fresh(self, rng):
        """Lazy scrub: fresh reuse sees zeros, prefix hits keep their data."""
        from repro.serve import PagedKVCache

        pool = PagedKVCache(num_layers=1, num_heads=1, d_head=2, block_size=4, num_blocks=2)
        tokens = np.arange(4)
        slot = pool.reserve(4)
        payload = rng.normal(size=(1, 1, 4, 2))
        pool.write(0, [slot], payload, payload, np.arange(4)[None, :])
        pool.publish_prefix(slot, tokens)
        pool.free(slot)
        # Prefix-hit reservation: the block keeps its contents (no memset).
        revived = pool.reserve(4, shared=pool.match_prefix(tokens))
        np.testing.assert_array_equal(pool.gather(0, [revived], 4)[0], payload)
        pool.free(revived)
        # Fresh reservations must see zeros again once the block is recycled.
        first = pool.reserve(4)   # takes the never-written (clean) block
        second = pool.reserve(4)  # reclaims the dirty one -> scrubbed
        for fresh in (first, second):
            assert not pool.gather(0, [fresh], 4)[0].any()


class TestChunkedPrefill:
    """Chunked prefill: fairness and bounded per-step prefill work."""

    def test_active_decodes_advance_during_a_long_prefill(self, runners, corpus_splits):
        """Every step with a pending long prompt still advances the decoders."""
        train_tokens, _ = corpus_splits
        runner = runners["float"]
        scheduler = Scheduler(
            runner, GenerationConfig(max_new_tokens=24), max_batch_size=3,
            block_size=8, prefill_chunk=6,
        )
        short_ids = [scheduler.submit(train_tokens[i * 9 : i * 9 + 5]) for i in range(2)]
        long_id = scheduler.submit(
            train_tokens[100:160], max_new_tokens=2, arrival_time=1.0
        )
        progressed_during_prefill = 0
        while scheduler.has_pending:
            active_before = {
                state.slot: len(state.generated) for state in scheduler._active.values()
            }
            prefilling = bool(scheduler._prefilling)
            scheduler.step()
            if prefilling and active_before:
                after = {
                    state.slot: len(state.generated)
                    for state in scheduler._active.values()
                    if state.slot in active_before
                }
                assert all(after[slot] > active_before[slot] for slot in after)
                progressed_during_prefill += 1
        # The 60-token prompt at 6 tokens/step kept the decoders company for
        # many iterations instead of stalling them in one monolithic prefill.
        assert progressed_during_prefill >= 8

    def test_chunk_budget_bounds_prefill_tokens_per_step(self, runners, corpus_splits):
        train_tokens, _ = corpus_splits
        runner = runners["float"]
        scheduler = Scheduler(
            runner, GenerationConfig(max_new_tokens=2), max_batch_size=2,
            block_size=8, prefill_chunk=7,
        )
        scheduler.submit(train_tokens[:40])
        scheduler.submit(train_tokens[50:90])
        while scheduler.has_pending:
            before = scheduler.stats.prefill_tokens
            scheduler.step()
            assert scheduler.stats.prefill_tokens - before <= 7

    def test_chunked_equals_unchunked_bitwise(self, runners, corpus_splits):
        """Chunk boundaries never change Tender's integer outputs."""
        train_tokens, _ = corpus_splits
        runner = runners["tender-implicit"]
        prompts = [train_tokens[:23], train_tokens[30:47], train_tokens[60:64]]
        config = GenerationConfig(max_new_tokens=4)
        whole, _ = serve_all(runner, prompts, config, prefix_cache=False)
        for chunk in (1, 3, 8, 64):
            chunked, _ = serve_all(
                runner, prompts, config, prefix_cache=False, prefill_chunk=chunk
            )
            for request_id in whole:
                np.testing.assert_array_equal(
                    chunked[request_id].generated, whole[request_id].generated
                )
                np.testing.assert_array_equal(
                    chunked[request_id].step_logits, whole[request_id].step_logits
                )

    def test_invalid_chunk_rejected(self, runners):
        with pytest.raises(ConfigurationError):
            Scheduler(runners["float"], prefill_chunk=0)


class TestPartialPrefill:
    """TransformerRunner.prefill with a starting position."""

    def test_split_prefill_matches_whole_prefill(self, runners, corpus_splits):
        train_tokens, _ = corpus_splits
        prompt = train_tokens[:17]
        for name in ("float", "tender-implicit", "tender-explicit"):
            runner = runners[name]
            whole = KVCache.for_model(runner.config, 1)
            reference = runner.prefill(prompt[None, :], np.array([len(prompt)]), whole)
            split = KVCache.for_model(runner.config, 1)
            runner.prefill(prompt[None, :9], np.array([9]), split)
            logits = runner.prefill(
                prompt[None, 9:], np.array([len(prompt) - 9]), split,
                start_positions=np.array([9]),
            )
            atol = 0.0 if name.startswith("tender") else 1e-12
            np.testing.assert_allclose(logits, reference, rtol=0.0, atol=atol)
            assert split.lengths[0] == len(prompt)
            for layer in range(whole.num_layers):
                for side in (0, 1):
                    np.testing.assert_allclose(
                        split.view(layer, len(prompt))[side],
                        whole.view(layer, len(prompt))[side],
                        rtol=0.0,
                        atol=atol,
                    )

    def test_start_positions_validated(self, runners, corpus_splits):
        train_tokens, _ = corpus_splits
        runner = runners["float"]
        cache = KVCache.for_model(runner.config, 2)
        tokens = np.stack([train_tokens[:4], train_tokens[4:8]])
        with pytest.raises(ConfigurationError):
            runner.prefill(tokens, np.array([4, 4]), cache, start_positions=np.array([0]))
        with pytest.raises(ConfigurationError):
            runner.prefill(tokens, np.array([4, 4]), cache, start_positions=np.array([-1, 0]))


class TestPoolSizing:
    """Scheduler.blocks_for_requests accounts for shared prefix blocks."""

    def test_lengths_only_sizing_unchanged(self, tiny_config):
        config = GenerationConfig(max_new_tokens=4)
        total = Scheduler.blocks_for_requests(tiny_config, [10, 20], config, block_size=8)
        assert total == -(-13 // 8) + -(-23 // 8)

    def test_identical_prompts_are_not_over_reserved(self, tiny_config, corpus_splits):
        train_tokens, _ = corpus_splits
        prompt = train_tokens[:21]
        config = GenerationConfig(max_new_tokens=4)
        cold = Scheduler.blocks_for_requests(
            tiny_config, [prompt, prompt], config, block_size=8
        )
        shared = Scheduler.blocks_for_requests(
            tiny_config, [prompt, prompt], config, block_size=8, prefix_cache=True
        )
        # The second request shares the two fully-covered prefix blocks.
        assert shared == cold - 2

    def test_shared_sizing_is_sufficient_for_the_engine(self, runners, corpus_splits):
        """An exactly-sized shared pool really serves identical prompts."""
        train_tokens, _ = corpus_splits
        runner = runners["float"]
        prompts = [train_tokens[:21], train_tokens[:21].copy(), train_tokens[:21].copy()]
        config = GenerationConfig(max_new_tokens=4)
        result = GenerationEngine(runner, prefix_cache=True).generate(prompts, config)
        baseline = GenerationEngine(runner).generate(prompts, config)
        for row in range(len(prompts)):
            np.testing.assert_array_equal(result.generated[row], baseline.generated[row])


class TestVectorizedPool:
    """The fancy-index gather/write paths against a straightforward reference."""

    @staticmethod
    def reference_gather(pool, slot_ids, layer, length):
        heads = pool.key_blocks[layer].shape[0]
        d_head = pool.key_blocks[layer].shape[3]
        keys = np.zeros((len(slot_ids), heads, length, d_head))
        values = np.zeros_like(keys)
        for row, slot in enumerate(slot_ids):
            table = pool.block_table(slot)
            copied = min(length, len(table) * pool.block_size)
            for block_index in range(pool.blocks_needed(copied) if copied else 0):
                start = block_index * pool.block_size
                stop = min(start + pool.block_size, copied)
                block = table[block_index]
                keys[row, :, start:stop] = pool.key_blocks[layer][:, block, : stop - start]
                values[row, :, start:stop] = pool.value_blocks[layer][:, block, : stop - start]
        return keys, values

    def test_gather_matches_reference_loop(self, rng):
        from repro.serve import PagedKVCache

        pool = PagedKVCache(num_layers=2, num_heads=3, d_head=4, block_size=4, num_blocks=12)
        slots = [pool.reserve(10), pool.reserve(4), pool.reserve(14)]
        for row, (slot, length) in enumerate(zip(slots, (10, 4, 13))):
            payload = rng.normal(size=(1, 3, length, 4))
            pool.write(1, [slot], payload, payload + 1, np.arange(length)[None, :])
        for length in (1, 4, 5, 12, 16):  # spans short-slot zero fill
            got = pool.gather(1, slots, length)
            want = self.reference_gather(pool, slots, 1, length)
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])

    def test_view_index_survives_unrelated_pool_churn(self, rng):
        """A cached view keeps working while other slots reserve/free/fork."""
        from repro.serve import PagedKVCache

        pool = PagedKVCache(num_layers=1, num_heads=2, d_head=4, block_size=4, num_blocks=10)
        slot = pool.reserve(8)
        view = pool.view([slot])
        payload = rng.normal(size=(1, 2, 8, 4))
        view.write(0, payload, payload, np.arange(8)[None, :])
        view.lengths[:] = 8
        view.commit()
        other = pool.reserve(8)  # bumps the table version under the view
        np.testing.assert_array_equal(view.view(0, 8)[0], payload)
        pool.free(other)
        np.testing.assert_array_equal(view.view(0, 8)[0], payload)

    def test_scattered_single_position_writes(self, rng):
        """Decode-shaped writes: each row scatters one ragged position."""
        from repro.serve import PagedKVCache

        pool = PagedKVCache(num_layers=1, num_heads=2, d_head=3, block_size=4, num_blocks=8)
        slots = [pool.reserve(12), pool.reserve(12)]
        payload = rng.normal(size=(2, 2, 1, 3))
        pool.write(0, slots, payload, payload, np.array([[2], [9]]))
        keys, _ = pool.gather(0, slots, 12)
        np.testing.assert_array_equal(keys[0, :, 2], payload[0, :, 0])
        np.testing.assert_array_equal(keys[1, :, 9], payload[1, :, 0])
        assert not keys[0, :, 9].any() and not keys[1, :, 2].any()
