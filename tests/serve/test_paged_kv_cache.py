"""Tests of the block-allocated paged KV cache and its dense slot views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.nn import TransformerConfig
from repro.serve import KVCache, PagedKVCache


def make_pool(layers=2, heads=2, d_head=4, block_size=4, num_blocks=8) -> PagedKVCache:
    return PagedKVCache(
        num_layers=layers, num_heads=heads, d_head=d_head, block_size=block_size, num_blocks=num_blocks
    )


class TestAllocation:
    def test_for_model_covers_max_active_at_max_seq_len(self):
        config = TransformerConfig(d_model=32, num_heads=2, num_layers=3, max_seq_len=20)
        pool = PagedKVCache.for_model(config, max_active=3, block_size=8)
        assert pool.num_layers == 3
        assert pool.num_blocks == 3 * 3  # ceil(20 / 8) == 3 blocks per request
        # Three requests at max_seq_len fit simultaneously.
        slots = [pool.reserve(20) for _ in range(3)]
        assert pool.free_block_count == 0
        for slot in slots:
            pool.free(slot)
        assert pool.free_block_count == pool.num_blocks

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ConfigurationError):
            PagedKVCache(num_layers=0, num_heads=1, d_head=1, block_size=1, num_blocks=1)

    def test_reserve_accounting_and_exhaustion(self):
        pool = make_pool(block_size=4, num_blocks=4)
        first = pool.reserve(9)  # 3 blocks
        assert pool.blocks_needed(9) == 3
        assert pool.free_block_count == 1
        assert pool.capacity_of(first) == 12
        with pytest.raises(ResourceExhaustedError):
            pool.reserve(5)  # needs 2, only 1 free
        second = pool.reserve(3)
        assert pool.free_block_count == 0
        pool.free(first)
        assert pool.free_block_count == 3
        assert pool.active_slots == [second]

    def test_freed_blocks_are_reused(self):
        pool = make_pool(num_blocks=2, block_size=4)
        slot = pool.reserve(8)
        pool.free(slot)
        again = pool.reserve(8)  # would exhaust the pool if blocks leaked
        assert pool.capacity_of(again) == 8

    def test_memory_is_allocated_once_up_front(self):
        pool = make_pool(layers=2, heads=2, d_head=4, block_size=4, num_blocks=8)
        expected = 2 * 2 * (8 * 2 * 4 * 4) * 8  # layers * (k+v) * pool shape * float64
        assert pool.memory_bytes == expected
        slot = pool.reserve(16)
        assert pool.memory_bytes == expected  # reservation moves no memory
        pool.free(slot)


class TestDataMovement:
    def test_write_gather_roundtrip_across_block_boundaries(self, rng):
        pool = make_pool(block_size=4)
        slot_a = pool.reserve(10)
        slot_b = pool.reserve(6)
        keys = rng.normal(size=(2, 2, 6, 4))
        values = rng.normal(size=(2, 2, 6, 4))
        positions = np.broadcast_to(np.arange(6), (2, 6))
        pool.write(0, [slot_a, slot_b], keys, values, positions)
        got_keys, got_values = pool.gather(0, [slot_a, slot_b], 6)
        np.testing.assert_array_equal(got_keys, keys)
        np.testing.assert_array_equal(got_values, values)
        # Other layers untouched.
        assert not pool.key_blocks[1].any()

    def test_ragged_rows_write_different_positions(self, rng):
        pool = make_pool(block_size=4)
        slots = [pool.reserve(12), pool.reserve(12)]
        keys = rng.normal(size=(2, 2, 1, 4))
        pool.write(1, slots, keys, keys, np.array([[2], [9]]))
        got_keys, _ = pool.gather(1, slots, 12)
        np.testing.assert_array_equal(got_keys[0, :, 2], keys[0, :, 0])
        np.testing.assert_array_equal(got_keys[1, :, 9], keys[1, :, 0])
        assert not got_keys[0, :, 9].any() and not got_keys[1, :, 2].any()

    def test_gather_zero_fills_past_reservation(self, rng):
        pool = make_pool(block_size=4)
        short = pool.reserve(4)
        payload = rng.normal(size=(1, 2, 4, 4))
        pool.write(0, [short], payload, payload, np.arange(4)[None, :])
        keys, values = pool.gather(0, [short], 10)  # a longer batch-mate's view
        assert keys.shape == (1, 2, 10, 4)
        np.testing.assert_array_equal(keys[:, :, :4], payload)
        assert not keys[:, :, 4:].any() and not values[:, :, 4:].any()

    def test_write_past_reservation_rejected(self, rng):
        pool = make_pool(block_size=4)
        slot = pool.reserve(4)
        payload = rng.normal(size=(1, 2, 1, 4))
        with pytest.raises(ConfigurationError):
            pool.write(0, [slot], payload, payload, np.array([[4]]))

    def test_negative_position_rejected_not_wrapped(self, rng):
        """A negative position must raise, not wrap into the last block."""
        pool = make_pool(block_size=4)
        slot = pool.reserve(8)
        payload = rng.normal(size=(1, 2, 1, 4))
        with pytest.raises(ConfigurationError):
            pool.write(0, [slot], payload, payload, np.array([[-1]]))
        assert not pool.key_blocks[0].any()

    def test_set_length_validated_against_reservation(self):
        pool = make_pool(block_size=4)
        slot = pool.reserve(6)  # 2 blocks -> capacity 8
        pool.set_length(slot, 8)
        assert pool.length_of(slot) == 8
        with pytest.raises(ConfigurationError):
            pool.set_length(slot, 9)


class TestSlotBatchView:
    def test_view_mirrors_dense_cache_interface(self, rng):
        pool = make_pool(block_size=4)
        dense = KVCache(num_layers=2, batch_size=2, num_heads=2, d_head=4, capacity=12)
        slots = [pool.reserve(12), pool.reserve(12)]
        view = pool.view(slots)
        keys = rng.normal(size=(2, 2, 3, 4))
        values = rng.normal(size=(2, 2, 3, 4))
        positions = np.broadcast_to(np.arange(3), (2, 3))
        for target in (dense, view):
            target.write(0, keys, values, positions)
        dense_view = dense.view(0, 3)
        paged_view = view.view(0, 3)
        np.testing.assert_array_equal(paged_view[0], dense_view[0])
        np.testing.assert_array_equal(paged_view[1], dense_view[1])
        assert view.num_layers == dense.num_layers
        assert view.batch_size == 2

    def test_lengths_commit_back_to_pool(self):
        pool = make_pool(block_size=4)
        slot = pool.reserve(8)
        pool.set_length(slot, 3)
        view = pool.view([slot])
        np.testing.assert_array_equal(view.lengths, [3])
        view.lengths += 2  # what decode_step does in place
        assert pool.length_of(slot) == 3  # not yet published
        view.commit()
        assert pool.length_of(slot) == 5

    def test_ensure_capacity_rejects_impossible_positions(self):
        pool = make_pool(block_size=4, num_blocks=4)  # 16 addressable positions
        view = pool.view([pool.reserve(4)])
        view.ensure_capacity(16)  # fine: the pool could address it
        with pytest.raises(ConfigurationError):
            view.ensure_capacity(17)

    def test_empty_view_rejected(self):
        with pytest.raises(ConfigurationError):
            make_pool().view([])


class TestTruncateInvalidatesCachedIndexes:
    """Regression: a view's cached block index must never outlive a rollback.

    ``truncate`` can return blocks to the free list; once another slot's
    reservation regrows into them, a ``SlotBatchView`` still holding the
    pre-rollback index would read (gather) or clobber (write) the new
    owner's KV.  Truncate therefore bumps the table version unconditionally
    — even a scrub-only rollback changes which positions of the retained
    blocks hold live data — and every view operation freshness-checks first.
    """

    def test_truncate_regrow_gather_write_roundtrip(self, rng):
        pool = make_pool(block_size=4, num_blocks=4)
        victim = pool.reserve(8)  # two blocks
        payload = rng.normal(size=(1, 2, 8, 4))
        pool.write(0, [victim], payload, payload, np.arange(8)[None, :])
        pool.set_length(victim, 8)
        view = pool.view([victim])
        view.view(0, 8)  # caches the two-block index
        # Roll back past the second block: it returns to the free list...
        assert pool.truncate(victim, 4) == 1
        # ...and another slot's reservation immediately regrows into it.
        other = pool.reserve(4)
        foreign = rng.normal(size=(1, 2, 4, 4))
        pool.write(0, [other], foreign, foreign, np.arange(4)[None, :])
        pool.set_length(other, 4)
        # Gather through the pre-rollback view: the stale index must refresh,
        # zero-filling past the truncated capacity instead of leaking the new
        # owner's KV out of the reclaimed block.
        keys, values = view.view(0, 8)
        np.testing.assert_array_equal(keys[:, :, :4], payload[:, :, :4])
        assert not keys[:, :, 4:].any() and not values[:, :, 4:].any()
        # Write through the same view: position 4 is out of the truncated
        # slot's capacity now — rejected, not scattered into the new owner.
        with pytest.raises(ConfigurationError):
            view.write(0, payload[:, :, :1], payload[:, :, :1], np.array([[4]]))
        got, _ = pool.gather(0, [other], 4)
        np.testing.assert_array_equal(got, foreign)

    def test_truncate_regrow_with_shared_prefix_blocks(self, rng):
        """Same hazard with the head block shared: the refreshed index keeps
        addressing the shared prefix correctly after the rollback."""
        pool = make_pool(block_size=4, num_blocks=4)
        parent = pool.reserve(4)
        payload = rng.normal(size=(1, 2, 4, 4))
        pool.write(0, [parent], payload, payload, np.arange(4)[None, :])
        pool.set_length(parent, 4)
        child = pool.reserve(8, shared=pool.block_table(parent))
        pool.set_length(child, 4)
        tail = rng.normal(size=(1, 2, 4, 4))
        pool.write(0, [child], tail, tail, np.arange(4, 8)[None, :])
        pool.set_length(child, 8)
        view = pool.view([child])
        view.view(0, 8)
        assert pool.truncate(child, 4) == 1  # drop the private tail block
        other = pool.reserve(4)
        foreign = rng.normal(size=(1, 2, 4, 4))
        pool.write(0, [other], foreign, foreign, np.arange(4)[None, :])
        keys, _ = view.view(0, 8)
        np.testing.assert_array_equal(keys[:, :, :4], payload)  # shared head intact
        assert not keys[:, :, 4:].any()  # reclaimed tail not leaked

    def test_scrub_only_truncate_still_bumps_the_version(self):
        """A min_capacity rollback releases nothing yet still invalidates:
        the retained blocks' rolled-back positions changed under the view."""
        pool = make_pool(block_size=4)
        slot = pool.reserve(8)
        pool.set_length(slot, 8)
        before = pool.table_version
        assert pool.truncate(slot, 6, min_capacity=8) == 0
        assert pool.table_version > before
