"""Serving parity sweep: fused paged attention vs the gather reference path.

The fused path (``repro.core.kernels.paged_attention``) reads K/V straight
from ``PagedKVCache`` block storage; the retained reference fancy-indexes
the same blocks into dense per-view copies first.  The correctness bar,
matching the house style: Tender implicit/explicit tokens **and** step
logits must be bit-identical between the two paths across prefix cache
on/off, copy-on-write forks, chunked prefill, speculative verify, and
contexts exactly at / one past a block multiple.  The FP baseline's tokens
must match, its logits to BLAS summation-order noise (~1e-15) on
fragmented block tables only.  Tender ``quantize_attention=True`` keeps
the gather path (dynamic per-head statistics need the dense operands), as
documented in ``docs/architecture.md``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TenderConfig, TenderQuantizer
from repro.models import TransformerRunner
from repro.serve import GenerationConfig, ModelDraft, Scheduler, SpecConfig


def tender_runner(weights, calibration, implicit: bool, **config_kwargs) -> TransformerRunner:
    config = TenderConfig(bits=8, num_groups=8, row_chunk_size=8, **config_kwargs)
    return TenderQuantizer(config, implicit=implicit).quantize(weights, calibration)


@pytest.fixture(scope="module")
def runners(outlier_weights, calibration):
    return {
        "float": TransformerRunner(outlier_weights),
        "tender-implicit": tender_runner(outlier_weights, calibration, implicit=True),
        "tender-explicit": tender_runner(outlier_weights, calibration, implicit=False),
    }


@pytest.fixture(scope="module")
def prompts(corpus_splits):
    """Block-boundary-straddling prompts (block size 8 in these tests).

    Final contexts land exactly at and one past block multiples once the
    5 decode steps run; the second prompt shares the first's two-block
    prefix, so prefix-cached runs exercise copy-on-write forks too.
    """
    train_tokens, _ = corpus_splits
    template = train_tokens[:16]  # exactly two blocks
    return [
        template,
        np.concatenate([template, train_tokens[50:55]]),
        train_tokens[20:37],  # 17 tokens: one past a block multiple
        np.concatenate([train_tokens[100:108], train_tokens[100:108]]),  # drafts well
    ]


def serve_all(
    runner,
    prompts,
    config,
    *,
    fused,
    prefix_cache=False,
    prefill_chunk=None,
    speculation=None,
):
    scheduler = Scheduler(
        runner,
        config,
        max_batch_size=3,
        block_size=8,
        prefix_cache=prefix_cache,
        prefill_chunk=prefill_chunk,
        speculation=speculation,
    )
    before = runner.fused_paged_attention
    runner.fused_paged_attention = fused
    try:
        for prompt in prompts:
            scheduler.submit(prompt)
        outputs = {output.request_id: output for output in scheduler.run()}
    finally:
        runner.fused_paged_attention = before
    return outputs, scheduler


def assert_outputs_match(name, fused, reference):
    assert fused.keys() == reference.keys()
    for request_id in reference:
        np.testing.assert_array_equal(
            fused[request_id].generated, reference[request_id].generated
        )
        if name.startswith("tender"):
            np.testing.assert_array_equal(
                fused[request_id].step_logits, reference[request_id].step_logits
            )
        else:
            np.testing.assert_allclose(
                fused[request_id].step_logits,
                reference[request_id].step_logits,
                rtol=0.0,
                atol=1e-12,
            )


@pytest.mark.parametrize("name", ["float", "tender-implicit", "tender-explicit"])
class TestFusedMatchesGather:
    @pytest.mark.parametrize("prefill_chunk", [None, 5])
    @pytest.mark.parametrize("prefix_cache", [False, True])
    def test_greedy_sweep(self, name, prefill_chunk, prefix_cache, runners, prompts):
        runner = runners[name]
        config = GenerationConfig(max_new_tokens=5)
        fused, _ = serve_all(
            runner, prompts, config, fused=True,
            prefix_cache=prefix_cache, prefill_chunk=prefill_chunk,
        )
        reference, _ = serve_all(
            runner, prompts, config, fused=False,
            prefix_cache=prefix_cache, prefill_chunk=prefill_chunk,
        )
        assert_outputs_match(name, fused, reference)

    def test_speculative_verify(self, name, runners, prompts):
        runner = runners[name]
        config = GenerationConfig(max_new_tokens=8)
        # Self-drafting: greedy drafts always match the target's greedy
        # samples, so multi-token verify forwards run for every runner.
        speculation = SpecConfig(drafter=ModelDraft(runner), draft_tokens=3, max_draft=6)
        fused, scheduler = serve_all(
            runner, prompts, config, fused=True, speculation=speculation
        )
        reference, _ = serve_all(
            runner, prompts, config, fused=False, speculation=speculation
        )
        assert scheduler.stats.spec_accepted_tokens > 0  # verify path exercised
        assert_outputs_match(name, fused, reference)

    def test_seeded_top_k(self, name, runners, prompts):
        runner = runners[name]
        config = GenerationConfig(max_new_tokens=5, top_k=8, temperature=1.2, seed=17)
        fused, _ = serve_all(runner, prompts, config, fused=True)
        reference, _ = serve_all(runner, prompts, config, fused=False)
        for request_id in reference:
            np.testing.assert_array_equal(
                fused[request_id].generated, reference[request_id].generated
            )


class TestGatherBytes:
    def test_fused_serving_moves_no_dense_kv(self, runners, prompts):
        """End to end — prefill, decode, COW — without one gathered byte."""
        _, scheduler = serve_all(
            runners["tender-implicit"],
            prompts,
            GenerationConfig(max_new_tokens=5),
            fused=True,
            prefix_cache=True,
        )
        assert scheduler.cache.gather_bytes == 0

    def test_reference_path_still_gathers(self, runners, prompts):
        _, scheduler = serve_all(
            runners["tender-implicit"],
            prompts,
            GenerationConfig(max_new_tokens=5),
            fused=False,
        )
        assert scheduler.cache.gather_bytes > 0

    def test_quantized_attention_keeps_the_gather_path(self, outlier_weights, calibration, prompts):
        """Tender "all" needs dense operands for its dynamic statistics; the
        fused flag must not reroute it."""
        runner = tender_runner(
            outlier_weights, calibration, implicit=True, quantize_attention=True
        )
        assert not runner.executor.plain_attention
        _, scheduler = serve_all(
            runner, prompts[:2], GenerationConfig(max_new_tokens=3), fused=True
        )
        assert scheduler.cache.gather_bytes > 0
