"""Tests of the asyncio serving frontend: streams, backpressure, preemption.

The anchor is the same as everywhere in ``tests/serve``: whatever the
frontend does — buffer tokens, bound the queue, expire deadlines, preempt a
victim and replay it — each request's tokens must equal running it alone
through ``GenerationEngine.generate``.  The event loop may only change when
callers *observe* tokens, never which tokens are produced.

No pytest-asyncio in the environment: each test drives its own event loop
through ``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import TenderConfig, TenderQuantizer
from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.models import TransformerRunner
from repro.serve import (
    AsyncEngine,
    GenerationConfig,
    GenerationEngine,
    Request,
    Scheduler,
    serve_all,
)


@pytest.fixture()
def runner(tiny_weights):
    return TransformerRunner(tiny_weights)


@pytest.fixture(scope="module")
def prompt_pool(corpus_splits):
    train_tokens, _ = corpus_splits
    return [train_tokens[i * 10 : i * 10 + 4 + (i % 5)] for i in range(12)]


def solo_tokens(runner, prompt, max_new_tokens):
    """Tokens of ``prompt`` served alone — the parity reference."""
    result = GenerationEngine(runner).generate(
        [prompt], GenerationConfig(max_new_tokens=max_new_tokens)
    )
    return result.generated[0]


class TestStreaming:
    def test_stream_yields_exactly_the_generated_tokens(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(runner, GenerationConfig(max_new_tokens=6)) as engine:
                stream = await engine.submit(prompt_pool[0])
                streamed = [token async for token in stream]
                output = await stream.result()
            return streamed, output

        streamed, output = asyncio.run(main())
        np.testing.assert_array_equal(np.asarray(streamed), output.generated)
        np.testing.assert_array_equal(
            np.asarray(streamed), solo_tokens(runner, prompt_pool[0], 6)
        )
        assert output.finish_reason == "length"
        assert output.first_token_at >= output.admitted_at >= 0.0

    def test_interleaved_streams_stay_isolated(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(
                runner, GenerationConfig(max_new_tokens=5), max_batch_size=3
            ) as engine:
                streams = [await engine.submit(p) for p in prompt_pool[:3]]
                collected = await asyncio.gather(
                    *[asyncio.create_task(collect(s)) for s in streams]
                )
            return collected

        async def collect(stream):
            return [token async for token in stream]

        collected = asyncio.run(main())
        for prompt, tokens in zip(prompt_pool[:3], collected):
            np.testing.assert_array_equal(np.asarray(tokens), solo_tokens(runner, prompt, 5))

    def test_late_iteration_drains_the_buffer(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(runner, GenerationConfig(max_new_tokens=4)) as engine:
                stream = await engine.submit(prompt_pool[1])
                output = await stream.result()  # finish before iterating
                tokens = [token async for token in stream]
                again = [token async for token in stream]  # terminated stays terminated
            return output, tokens, again

        output, tokens, again = asyncio.run(main())
        np.testing.assert_array_equal(np.asarray(tokens), output.generated)
        assert again == []

    def test_serve_all_returns_outputs_in_submission_order(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(
                runner, GenerationConfig(max_new_tokens=4), max_batch_size=2
            ) as engine:
                return await serve_all(engine, prompt_pool[:4])

        outputs = asyncio.run(main())
        assert [o.request_id for o in outputs] == sorted(o.request_id for o in outputs)
        for prompt, output in zip(prompt_pool[:4], outputs):
            np.testing.assert_array_equal(
                np.asarray(output.generated), solo_tokens(runner, prompt, 4)
            )

    def test_request_objects_are_rejected(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(runner) as engine:
                with pytest.raises(ConfigurationError, match="arrival times"):
                    await engine.submit(Request(request_id=0, prompt=prompt_pool[0]))

        asyncio.run(main())


class TestBackpressure:
    def test_submit_nowait_sheds_load_at_the_bound(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(
                runner,
                GenerationConfig(max_new_tokens=3),
                max_waiting=2,
                max_batch_size=1,
            ) as engine:
                streams = [engine.submit_nowait(p) for p in prompt_pool[:2]]
                with pytest.raises(ResourceExhaustedError, match="waiting queue is full"):
                    engine.submit_nowait(prompt_pool[2])
                return [await s.result() for s in streams]

        outputs = asyncio.run(main())
        assert all(o.finish_reason == "length" for o in outputs)

    def test_submit_suspends_until_a_seat_frees(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(
                runner,
                GenerationConfig(max_new_tokens=2),
                max_waiting=2,
                max_batch_size=1,
            ) as engine:
                streams = [await engine.submit(p) for p in prompt_pool[:6]]
                outputs = [await s.result() for s in streams]
            return outputs

        outputs = asyncio.run(main())
        assert len(outputs) == 6
        for prompt, output in zip(prompt_pool[:6], outputs):
            np.testing.assert_array_equal(
                np.asarray(output.generated), solo_tokens(runner, prompt, 2)
            )


class TestDeadlines:
    def test_unadmittable_request_expires(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(
                runner,
                GenerationConfig(max_new_tokens=10),
                max_batch_size=1,
                preemption=False,
            ) as engine:
                long_running = await engine.submit(prompt_pool[0])
                hopeless = await engine.submit(prompt_pool[1], deadline=2.0)
                expired = await hopeless.result()
                finished = await long_running.result()
            return expired, finished

        expired, finished = asyncio.run(main())
        assert expired.finish_reason == "expired"
        assert len(expired.generated) == 0
        assert expired.admitted_at == -1.0
        assert finished.finish_reason == "length"

    def test_admitted_request_never_expires(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(
                runner, GenerationConfig(max_new_tokens=8), max_batch_size=2
            ) as engine:
                stream = await engine.submit(prompt_pool[0], deadline=1.0)
                return await stream.result()

        output = asyncio.run(main())
        assert output.finish_reason == "length"
        assert len(output.generated) == 8


def tender_runner(weights, calibration, implicit):
    config = TenderConfig(bits=8, num_groups=8, row_chunk_size=8)
    return TenderQuantizer(config, implicit=implicit).quantize(weights, calibration)


@pytest.fixture(scope="module")
def parity_runners(outlier_weights, calibration):
    return {
        "float": TransformerRunner(outlier_weights),
        "tender-implicit": tender_runner(outlier_weights, calibration, implicit=True),
        "tender-explicit": tender_runner(outlier_weights, calibration, implicit=False),
    }


@pytest.mark.parametrize("name", ["float", "tender-implicit", "tender-explicit"])
class TestPreemptionParity:
    def test_preempted_output_is_bit_identical(self, name, parity_runners, prompt_pool):
        """An urgent arrival evicts a victim; the victim's replayed tokens match."""
        runner = parity_runners[name]

        async def main():
            async with AsyncEngine(
                runner,
                GenerationConfig(max_new_tokens=12),
                max_batch_size=2,
                block_size=4,
            ) as engine:
                low = [await engine.submit(p, priority=5) for p in prompt_pool[:2]]
                # Let the victims decode a few tokens before the urgent burst.
                for stream in low:
                    await anext(aiter(stream))
                urgent = [await engine.submit(p, priority=0) for p in prompt_pool[2:4]]
                outputs = [await s.result() for s in low + urgent]
                stats = engine.stats
            return outputs, stats

        outputs, stats = asyncio.run(main())
        assert stats.preemptions >= 1
        assert sum(o.preemptions for o in outputs) == stats.preemptions
        for prompt, output in zip(prompt_pool[:4], outputs):
            np.testing.assert_array_equal(
                np.asarray(output.generated), solo_tokens(runner, prompt, 12)
            )

    def test_preempted_request_reports_resume_prefix_hits(
        self, name, parity_runners, prompt_pool
    ):
        """Replay after eviction re-maps published prefix blocks instead of recomputing."""
        runner = parity_runners[name]

        async def main():
            async with AsyncEngine(
                runner,
                GenerationConfig(max_new_tokens=12),
                max_batch_size=1,
                block_size=4,
            ) as engine:
                victim = await engine.submit(prompt_pool[0], priority=5)
                await anext(aiter(victim))
                urgent = await engine.submit(prompt_pool[1], priority=0)
                victim_out = await victim.result()
                urgent_out = await urgent.result()
            return victim_out, urgent_out

        victim_out, urgent_out = asyncio.run(main())
        assert victim_out.preemptions >= 1
        assert victim_out.prefix_hit_tokens > 0
        assert urgent_out.preemptions == 0
        np.testing.assert_array_equal(
            np.asarray(victim_out.generated), solo_tokens(runner, prompt_pool[0], 12)
        )


class TestCancellation:
    def test_cancel_mid_stream_releases_every_block(self, runner, prompt_pool):
        async def main():
            engine = AsyncEngine(
                runner, GenerationConfig(max_new_tokens=32), max_batch_size=2, prefix_cache=False
            )
            async with engine:
                total = engine.scheduler.cache.num_blocks
                stream = await engine.submit(prompt_pool[0])
                first = await anext(aiter(stream))
                output = await stream.cancel()
                remaining = [token async for token in stream]
                free_after = engine.scheduler.cache.free_block_count
            return total, first, output, remaining, free_after

        total, first, output, remaining, free_after = asyncio.run(main())
        assert output.finish_reason == "cancelled"
        assert output.generated[0] == first
        np.testing.assert_array_equal(np.asarray([first] + remaining), output.generated)
        assert free_after == total

    def test_cancel_while_waiting_returns_empty_output(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(
                runner, GenerationConfig(max_new_tokens=16), max_batch_size=1
            ) as engine:
                running = await engine.submit(prompt_pool[0])
                queued = await engine.submit(prompt_pool[1])
                cancelled = await queued.cancel()
                finished = await running.result()
            return cancelled, finished

        cancelled, finished = asyncio.run(main())
        assert cancelled.finish_reason == "cancelled"
        assert len(cancelled.generated) == 0
        assert finished.finish_reason == "length"

    def test_close_resolves_outstanding_streams_as_cancelled(self, runner, prompt_pool):
        async def main():
            engine = AsyncEngine(runner, GenerationConfig(max_new_tokens=64), max_batch_size=1)
            stream = await engine.submit(prompt_pool[0])
            await anext(aiter(stream))
            await engine.close()
            output = await stream.result()
            with pytest.raises(ConfigurationError, match="closed"):
                await engine.submit(prompt_pool[1])
            return output, engine.scheduler.cache.free_block_count, engine.scheduler.cache.num_blocks

        output, free_after, total = asyncio.run(main())
        assert output.finish_reason == "cancelled"
        assert len(output.generated) >= 1
        assert free_after == total


class TestClassStats:
    def test_per_class_ttft_accounting(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(
                runner, GenerationConfig(max_new_tokens=4), max_batch_size=2
            ) as engine:
                await serve_all(engine, prompt_pool[:4], priorities=[0, 1, 0, 1])
                stats = engine.stats
            return stats

        stats = asyncio.run(main())
        assert set(stats.ttft_by_class) == {0, 1}
        assert len(stats.ttft_values()) == 4
        assert len(stats.ttft_values(priority=0)) == 2
        assert stats.ttft_percentile(0.99) >= stats.ttft_percentile(0.5) > 0.0
        assert stats.mean_ttft() > 0.0
        assert stats.mean_tpot() > 0.0
        assert stats.mean_ttft(priority=0) <= stats.mean_ttft(priority=1)


class TestErrorContainment:
    def test_poisoned_executor_resolves_every_pending_stream(self, runner, prompt_pool):
        """An escaping serve-loop error rejects all streams — nothing hangs."""

        async def main():
            engine = AsyncEngine(
                runner, GenerationConfig(max_new_tokens=16), max_batch_size=2
            )

            def explode():
                raise RuntimeError("executor exploded")

            engine.scheduler.step = explode
            streams = [await engine.submit(p) for p in prompt_pool[:2]]
            for stream in streams:
                with pytest.raises(RuntimeError, match="executor exploded"):
                    await stream.result()
            # Iterators surface the same error in place of StopAsyncIteration.
            with pytest.raises(RuntimeError, match="executor exploded"):
                async for _ in streams[0]:
                    pass
            # The engine is dead: later submissions report why, immediately.
            with pytest.raises(RuntimeError, match="executor exploded"):
                await engine.submit(prompt_pool[2])
            await engine.close()

        asyncio.run(main())


class TestStreamTimeouts:
    def test_result_timeout_leaves_the_request_untouched(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(
                runner, GenerationConfig(max_new_tokens=48), max_batch_size=1
            ) as engine:
                stream = await engine.submit(prompt_pool[0])
                with pytest.raises(asyncio.TimeoutError):
                    await stream.result(timeout=0.0001)
                assert not stream.finished
                output = await stream.result()
            return output

        output = asyncio.run(main())
        assert output.finish_reason == "length"
        assert len(output.generated) == 48

    def test_per_token_timeout_expires_through_the_deadline_path(
        self, runner, prompt_pool
    ):
        async def main():
            async with AsyncEngine(
                runner, GenerationConfig(max_new_tokens=8), max_batch_size=1
            ) as engine:
                running = await engine.submit(prompt_pool[0], max_new_tokens=96)
                starved = await engine.submit(prompt_pool[1])
                with pytest.raises(asyncio.TimeoutError):
                    await starved.next(timeout=0.02)
                expired = await starved.result()
                finished = await running.result()
            return expired, finished

        expired, finished = asyncio.run(main())
        assert expired.finish_reason == "expired"
        assert len(expired.generated) == 0
        assert finished.finish_reason == "length"


class TestSchedulerErrorPaths:
    def test_exhaustion_during_resume_replay_defers_without_data_loss(
        self, runner, prompt_pool
    ):
        """A failed block reservation on preemption-resume is retried, not fatal."""
        scheduler = Scheduler(
            runner,
            GenerationConfig(max_new_tokens=10),
            max_batch_size=1,
            block_size=4,
            preemption=True,
        )
        victim = scheduler.submit(prompt_pool[0], priority=5)
        while scheduler.stats.generated_tokens < 2:
            scheduler.step()
        urgent = scheduler.submit(prompt_pool[1], priority=0, max_new_tokens=4)
        scheduler.step()  # the urgent arrival evicts the victim

        from repro.errors import ResourceExhaustedError as Exhausted

        original = scheduler.cache.reserve

        def refuse(*args, **kwargs):
            raise Exhausted("injected: no blocks for the resume replay")

        scheduler.cache.reserve = refuse
        outputs = []
        for _ in range(8):
            outputs.extend(scheduler.step())
        # The urgent request finished; the victim is deferred, not dropped.
        assert {output.request_id for output in outputs} == {urgent}
        assert scheduler.num_waiting == 1
        scheduler.cache.reserve = original
        outputs.extend(scheduler.run())
        victim_out = next(o for o in outputs if o.request_id == victim)
        np.testing.assert_array_equal(
            victim_out.generated, solo_tokens(runner, prompt_pool[0], 10)
        )

    def test_cancel_after_finish_returns_the_same_output(self, runner, prompt_pool):
        async def main():
            async with AsyncEngine(
                runner, GenerationConfig(max_new_tokens=4)
            ) as engine:
                stream = await engine.submit(prompt_pool[0])
                output = await stream.result()
                again = await stream.cancel()
            return output, again

        output, again = asyncio.run(main())
        assert again is output
        assert output.finish_reason == "length"

    def test_double_release_from_the_async_layer_raises(self, runner, prompt_pool):
        """The serve loop already released a finished request's slot — a
        second release must refuse rather than corrupt the block pool."""

        async def main():
            async with AsyncEngine(
                runner, GenerationConfig(max_new_tokens=8)
            ) as engine:
                stream = await engine.submit(prompt_pool[0])
                output = await stream.result()
                with pytest.raises(ConfigurationError, match="not admitted"):
                    engine.scheduler.release_request(stream.request_id)
            return output

        output = asyncio.run(main())
        assert output.finish_reason == "length"
