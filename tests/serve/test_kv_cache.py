"""Tests of the per-layer KV-cache container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import TransformerConfig
from repro.serve import KVCache


def make_cache(batch=3, heads=2, d_head=4, capacity=8, layers=2) -> KVCache:
    return KVCache(num_layers=layers, batch_size=batch, num_heads=heads, d_head=d_head, capacity=capacity)


class TestAllocation:
    def test_for_model_uses_config_dimensions(self):
        config = TransformerConfig(d_model=32, num_heads=2, num_layers=3, max_seq_len=16)
        cache = KVCache.for_model(config, batch_size=5)
        assert cache.num_layers == 3
        assert cache.batch_size == 5
        assert cache.capacity == 16
        assert cache.keys[0].shape == (5, 2, 16, 16)

    def test_capacity_capped_at_max_seq_len(self):
        config = TransformerConfig(d_model=32, num_heads=2, num_layers=1, max_seq_len=16)
        cache = KVCache.for_model(config, batch_size=1, capacity=1000)
        assert cache.capacity == 16

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ConfigurationError):
            KVCache(num_layers=0, batch_size=1, num_heads=1, d_head=1, capacity=1)

    def test_memory_accounting(self):
        cache = make_cache(batch=2, heads=2, d_head=4, capacity=8, layers=2)
        assert cache.memory_bytes == 2 * 2 * (2 * 2 * 8 * 4) * 8


class TestWriteAndView:
    def test_write_scatters_per_sequence_slots(self, rng):
        cache = make_cache()
        keys = rng.normal(size=(3, 2, 1, 4))
        values = rng.normal(size=(3, 2, 1, 4))
        slots = np.array([[0], [3], [5]])
        cache.write(0, keys, values, slots)
        for row in range(3):
            slot = slots[row, 0]
            np.testing.assert_array_equal(cache.keys[0][row, :, slot], keys[row, :, 0])
            np.testing.assert_array_equal(cache.values[0][row, :, slot], values[row, :, 0])
        # Other layers untouched.
        assert not cache.keys[1].any()

    def test_write_multiple_new_tokens(self, rng):
        cache = make_cache(batch=2)
        keys = rng.normal(size=(2, 2, 4, 4))
        values = rng.normal(size=(2, 2, 4, 4))
        slots = np.broadcast_to(np.arange(4), (2, 4))
        cache.write(1, keys, values, slots)
        retrieved_keys, retrieved_values = cache.view(1, 4)
        np.testing.assert_array_equal(retrieved_keys, keys)
        np.testing.assert_array_equal(retrieved_values, values)

    def test_view_truncates_to_requested_length(self, rng):
        cache = make_cache()
        keys, _ = cache.view(0, 5)
        assert keys.shape == (3, 2, 5, 4)
        with pytest.raises(ConfigurationError):
            cache.view(0, cache.capacity + 1)

    def test_overwrite_replaces_stale_slot(self, rng):
        cache = make_cache(batch=1)
        stale = rng.normal(size=(1, 2, 1, 4))
        fresh = rng.normal(size=(1, 2, 1, 4))
        slots = np.array([[2]])
        cache.write(0, stale, stale, slots)
        cache.write(0, fresh, fresh, slots)
        np.testing.assert_array_equal(cache.keys[0][0, :, 2], fresh[0, :, 0])


class TestGrowth:
    def test_ensure_capacity_preserves_contents(self, rng):
        cache = make_cache(capacity=4)
        keys = rng.normal(size=(3, 2, 4, 4))
        values = rng.normal(size=(3, 2, 4, 4))
        cache.write(0, keys, values, np.broadcast_to(np.arange(4), (3, 4)))
        cache.ensure_capacity(10)
        assert cache.capacity >= 10
        retrieved_keys, retrieved_values = cache.view(0, 4)
        np.testing.assert_array_equal(retrieved_keys, keys)
        np.testing.assert_array_equal(retrieved_values, values)

    def test_write_beyond_capacity_grows_automatically(self, rng):
        cache = make_cache(capacity=2)
        keys = rng.normal(size=(3, 2, 1, 4))
        cache.write(0, keys, keys, np.array([[7], [7], [7]]))
        assert cache.capacity >= 8
        np.testing.assert_array_equal(cache.keys[0][1, :, 7], keys[1, :, 0])
