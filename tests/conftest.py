"""Shared fixtures: a tiny trained language model and calibration data.

The fixtures are session-scoped because training even a tiny Transformer takes
a couple of seconds and many test modules reuse the same checkpoint.  The
model is deliberately small (d_model 32, 2 layers) so the whole suite stays
fast; tests that need the full zoo models are marked ``slow`` and load them
through the on-disk checkpoint cache.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import calibration_samples, load_corpus
from repro.models import OutlierSpec, extract_weights, inject_outliers, train_language_model
from repro.nn import TransformerConfig


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: tests that train or load zoo-sized checkpoints")


def pytest_generate_tests(metafunc):
    """Parametrize ``stress_seed`` from the ``REPRO_STRESS_SEEDS`` env knob.

    Tier-1 runs the randomized serving stress harness on 3 seeds by default;
    set ``REPRO_STRESS_SEEDS=50`` (or any N) for a deeper soak without
    touching the test code.
    """
    if "stress_seed" in metafunc.fixturenames:
        num_seeds = int(os.environ.get("REPRO_STRESS_SEEDS", "3"))
        metafunc.parametrize("stress_seed", range(num_seeds))


@pytest.fixture(scope="session")
def wiki_corpus():
    """A small wiki-like corpus shared by all tests."""
    return load_corpus("wiki", vocab_size=512, num_tokens=16_000)


@pytest.fixture(scope="session")
def corpus_splits(wiki_corpus):
    """(train_tokens, eval_tokens) of the shared corpus."""
    return wiki_corpus.split()


@pytest.fixture(scope="session")
def tiny_config():
    """Architecture of the tiny test model."""
    return TransformerConfig(
        vocab_size=512,
        d_model=32,
        num_heads=2,
        num_layers=2,
        d_ff=96,
        max_seq_len=128,
        activation="relu",
        seed=3,
    )


@pytest.fixture(scope="session")
def tiny_trained_model(tiny_config, corpus_splits):
    """A tiny TransformerLM trained for a handful of steps."""
    train_tokens, _ = corpus_splits
    model, result = train_language_model(
        tiny_config, train_tokens, steps=90, batch_size=8, seq_len=32, learning_rate=3e-3, seed=3
    )
    assert result.final_loss < result.losses[0], "training should reduce the loss"
    return model


@pytest.fixture(scope="session")
def tiny_weights(tiny_trained_model):
    """Inference weights extracted from the tiny trained model (no outliers)."""
    return extract_weights(tiny_trained_model)


@pytest.fixture(scope="session")
def outlier_spec():
    """Outlier-injection parameters used across the quantization tests."""
    return OutlierSpec(
        num_scale_channels=2,
        scale_magnitude=60.0,
        num_shift_channels=2,
        shift_magnitude=30.0,
        spread=2.0,
        seed=3,
    )


@pytest.fixture(scope="session")
def outlier_weights(tiny_weights, outlier_spec):
    """The tiny checkpoint with injected channel-wise outliers."""
    return inject_outliers(tiny_weights, spec=outlier_spec)


@pytest.fixture(scope="session")
def calibration(corpus_splits):
    """Calibration token sequences drawn from the training split."""
    train_tokens, _ = corpus_splits
    return calibration_samples(train_tokens, seq_len=48, num_samples=8, seed=11)


@pytest.fixture(scope="session")
def eval_tokens(corpus_splits):
    """Held-out evaluation tokens."""
    _, tokens = corpus_splits
    return tokens


@pytest.fixture
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
