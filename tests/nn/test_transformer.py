"""Tests of the Transformer models (LM and classifier) and the Module base."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import TransformerClassifier, TransformerConfig, TransformerLM


@pytest.fixture
def small_config():
    return TransformerConfig(
        vocab_size=50, d_model=16, num_heads=2, num_layers=2, d_ff=32, max_seq_len=20, seed=7
    )


class TestConfig:
    def test_rejects_bad_activation(self):
        with pytest.raises(ConfigurationError):
            TransformerConfig(activation="swish")

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ConfigurationError):
            TransformerConfig(d_model=30, num_heads=4)

    def test_d_head(self):
        assert TransformerConfig(d_model=64, num_heads=4).d_head == 16


class TestTransformerLM:
    def test_logits_shape(self, small_config):
        model = TransformerLM(small_config)
        tokens = np.array([[1, 2, 3, 4]])
        assert model(tokens).shape == (1, 4, 50)

    def test_accepts_1d_tokens(self, small_config):
        model = TransformerLM(small_config)
        assert model(np.array([1, 2, 3])).shape == (1, 3, 50)

    def test_rejects_too_long_sequences(self, small_config):
        model = TransformerLM(small_config)
        with pytest.raises(ConfigurationError):
            model(np.arange(25))

    def test_requires_causal_config(self, small_config):
        config = TransformerConfig(
            vocab_size=50, d_model=16, num_heads=2, num_layers=1, d_ff=32, causal=False
        )
        with pytest.raises(ConfigurationError):
            TransformerLM(config)

    def test_causality_of_full_model(self, small_config, rng):
        model = TransformerLM(small_config)
        tokens = rng.integers(0, 50, size=(1, 6))
        modified = tokens.copy()
        modified[0, -1] = (modified[0, -1] + 1) % 50
        out1 = model(tokens).numpy()
        out2 = model(modified).numpy()
        np.testing.assert_allclose(out1[0, :-1], out2[0, :-1], atol=1e-9)

    def test_deterministic_given_seed(self, small_config):
        tokens = np.array([[1, 2, 3]])
        out1 = TransformerLM(small_config)(tokens).numpy()
        out2 = TransformerLM(small_config)(tokens).numpy()
        np.testing.assert_allclose(out1, out2)

    def test_state_dict_roundtrip(self, small_config, rng):
        model = TransformerLM(small_config)
        state = model.state_dict()
        other = TransformerLM(
            TransformerConfig(
                vocab_size=50, d_model=16, num_heads=2, num_layers=2, d_ff=32, max_seq_len=20, seed=99
            )
        )
        other.load_state_dict(state)
        tokens = rng.integers(0, 50, size=(1, 5))
        np.testing.assert_allclose(model(tokens).numpy(), other(tokens).numpy())

    def test_load_state_dict_rejects_missing_keys(self, small_config):
        model = TransformerLM(small_config)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_parameter_count_is_positive_and_consistent(self, small_config):
        model = TransformerLM(small_config)
        total = sum(p.size for p in model.parameters())
        assert model.num_parameters() == total > 0


class TestTransformerClassifier:
    def test_requires_num_classes(self):
        config = TransformerConfig(d_model=16, num_heads=2, num_layers=1, d_ff=32, causal=False)
        with pytest.raises(ConfigurationError):
            TransformerClassifier(config)

    def test_classify_shape(self):
        config = TransformerConfig(
            vocab_size=50, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            causal=False, num_classes=3, max_seq_len=16,
        )
        model = TransformerClassifier(config)
        logits = model(np.array([[1, 2, 3, 4]]))
        assert logits.shape == (1, 3)
