"""Tests of the basic NN modules: Linear, LayerNorm, Embedding, attention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import Embedding, LayerNorm, Linear, MultiHeadAttention, causal_mask
from repro.tensor import Tensor


class TestLinear:
    def test_forward_matches_numpy(self, rng):
        layer = Linear(6, 4, rng)
        x = rng.normal(size=(3, 6))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected)

    def test_without_bias(self, rng):
        layer = Linear(6, 4, rng, bias=False)
        assert layer.bias is None
        x = rng.normal(size=(2, 6))
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), x @ layer.weight.data)

    def test_parameters_are_registered(self, rng):
        layer = Linear(6, 4, rng)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert layer.num_parameters() == 6 * 4 + 4

    def test_weight_orientation_is_in_by_out(self, rng):
        layer = Linear(8, 3, rng)
        assert layer.weight.data.shape == (8, 3)


class TestLayerNorm:
    def test_normalizes_last_dimension(self, rng):
        layer = LayerNorm(8)
        x = rng.normal(size=(5, 8)) * 4 + 7
        out = layer(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)

    def test_has_gain_and_bias_parameters(self):
        layer = LayerNorm(8)
        names = {name for name, _ in layer.named_parameters()}
        assert names == {"gain", "bias"}


class TestEmbedding:
    def test_lookup_shape(self, rng):
        layer = Embedding(20, 6, rng)
        out = layer(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 6)

    def test_distinct_tokens_get_distinct_vectors(self, rng):
        layer = Embedding(20, 6, rng)
        out = layer(np.array([0, 1])).numpy()
        assert not np.allclose(out[0], out[1])


class TestAttention:
    def test_rejects_indivisible_heads(self, rng):
        with pytest.raises(ConfigurationError):
            MultiHeadAttention(d_model=10, num_heads=3, rng=rng)

    def test_output_shape(self, rng):
        attn = MultiHeadAttention(d_model=16, num_heads=4, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 16)))
        assert attn(x).shape == (2, 5, 16)

    def test_causal_mask_is_upper_triangular(self):
        mask = causal_mask(4)
        assert mask[0, 1] and mask[2, 3]
        assert not mask[1, 1] and not mask[3, 0]

    def test_causality_first_token_ignores_future(self, rng):
        attn = MultiHeadAttention(d_model=8, num_heads=2, rng=rng, causal=True)
        x1 = rng.normal(size=(1, 4, 8))
        x2 = x1.copy()
        x2[0, 3] += 10.0  # perturb the last position only
        out1 = attn(Tensor(x1)).numpy()
        out2 = attn(Tensor(x2)).numpy()
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-9)

    def test_non_causal_attention_sees_future(self, rng):
        attn = MultiHeadAttention(d_model=8, num_heads=2, rng=rng, causal=False)
        x1 = rng.normal(size=(1, 4, 8))
        x2 = x1.copy()
        x2[0, 3] += 10.0
        out1 = attn(Tensor(x1)).numpy()
        out2 = attn(Tensor(x2)).numpy()
        assert not np.allclose(out1[0, 0], out2[0, 0])

    def test_gradients_reach_all_projections(self, rng):
        attn = MultiHeadAttention(d_model=8, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(1, 3, 8)), requires_grad=True)
        attn(x).sum().backward()
        for _, param in attn.named_parameters():
            assert param.grad is not None
