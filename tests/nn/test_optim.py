"""Tests of the optimizers and a tiny end-to-end training sanity check."""

from __future__ import annotations

import numpy as np

from repro.nn import SGD, Adam, TransformerConfig, TransformerLM
from repro.nn.optim import Optimizer
from repro.tensor import Tensor, cross_entropy


def quadratic_loss(param: Tensor) -> Tensor:
    """Simple convex objective with minimum at 3."""
    return ((param - 3.0) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Tensor(np.array([0.0]), requires_grad=True)
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(param)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Tensor(np.array([0.0]), requires_grad=True)
        momentum = Tensor(np.array([0.0]), requires_grad=True)
        opt_plain = SGD([plain], lr=0.02)
        opt_momentum = SGD([momentum], lr=0.02, momentum=0.9)
        for _ in range(20):
            for param, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                loss = quadratic_loss(param)
                opt.zero_grad()
                loss.backward()
                opt.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_skips_parameters_without_gradients(self):
        param = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no backward yet
        np.testing.assert_allclose(param.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Tensor(np.array([0.0, 10.0]), requires_grad=True)
        optimizer = Adam([param], lr=0.2)
        for _ in range(200):
            loss = quadratic_loss(param)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, 3.0], atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        param = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = Adam([param], lr=0.01, weight_decay=1.0)
        for _ in range(50):
            loss = (param * 0.0).sum()  # zero task gradient; only decay acts
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert abs(param.data[0]) < 5.0

    def test_base_class_step_is_abstract(self):
        param = Tensor(np.array([0.0]), requires_grad=True)
        try:
            Optimizer([param]).step()
        except NotImplementedError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("Optimizer.step should raise NotImplementedError")


class TestTrainingStep:
    def test_one_adam_step_reduces_lm_loss(self, rng):
        config = TransformerConfig(
            vocab_size=30, d_model=16, num_heads=2, num_layers=1, d_ff=32, max_seq_len=16, seed=5
        )
        model = TransformerLM(config)
        optimizer = Adam(model.parameters(), lr=5e-3)
        tokens = rng.integers(0, 30, size=(4, 9))
        inputs, targets = tokens[:, :-1], tokens[:, 1:]
        losses = []
        for _ in range(10):
            loss = cross_entropy(model(inputs), targets)
            losses.append(loss.item())
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert losses[-1] < losses[0]
