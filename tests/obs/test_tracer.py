"""Tracer semantics: spans, instants, clocks, the ring buffer, and export.

The serving-layer integration (lifecycle reconstruction across replicas,
byte-identical chaos exports) lives in ``tests/serve/test_observability.py``;
this module pins the primitives those tests stand on — per-track span
nesting, deterministic clock behavior, FlightRecorder wraparound, and the
Chrome trace-event rows the exporter writes.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import CountingClock, FlightRecorder, Tracer, WallClock


class TestClocks:
    def test_counting_clock_advances_by_step(self):
        clock = CountingClock(start=10, step=3)
        assert [clock() for _ in range(4)] == [10, 13, 16, 19]
        assert clock.reads == 4

    def test_counting_clock_rejects_zero_step(self):
        with pytest.raises(ValueError):
            CountingClock(step=0)

    def test_wall_clock_is_monotone_microseconds(self):
        clock = WallClock()
        first = clock()
        second = clock()
        assert second >= first >= 0.0


class TestSpans:
    def test_span_pairs_begin_and_end_on_one_track(self):
        tracer = Tracer()
        with tracer.span("decode_step", "replica0", batch=3):
            tracer.instant("request.first_token", "replica0", corr="req7")
        phases = [(e.name, e.phase) for e in tracer.events]
        assert phases == [
            ("decode_step", "B"),
            ("request.first_token", "i"),
            ("decode_step", "E"),
        ]

    def test_spans_nest_per_track(self):
        tracer = Tracer()
        tracer.begin("outer", "a")
        tracer.begin("inner", "a")
        tracer.begin("other", "b")
        tracer.end("a")  # closes inner, not other
        tracer.end("b")
        tracer.end("a")
        ends = [e.name for e in tracer.events if e.phase == "E"]
        assert ends == ["inner", "other", "outer"]

    def test_end_without_open_span_raises(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="no open span"):
            tracer.end("replica0")

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("verify_step", "replica0"):
                raise RuntimeError("shard died mid-forward")
        assert [e.phase for e in tracer.events] == ["B", "E"]

    def test_timestamps_come_from_injected_clock(self):
        tracer = Tracer(clock=CountingClock(start=100, step=10))
        tracer.instant("a", "t")
        tracer.instant("b", "t")
        assert [e.ts for e in tracer.events] == [100, 110]

    def test_events_for_filters_by_correlation_id(self):
        tracer = Tracer()
        tracer.instant("request.queued", "replica0", corr="req1")
        tracer.instant("request.queued", "replica0", corr="req2")
        tracer.instant("request.finished", "replica1", corr="req1")
        assert [e.track for e in tracer.events_for("req1")] == ["replica0", "replica1"]
        assert [e.name for e in tracer.events_named("request.queued")] == [
            "request.queued",
            "request.queued",
        ]


class TestFlightRecorder:
    def test_wraparound_keeps_newest_n(self):
        recorder = FlightRecorder(capacity=4)
        tracer = Tracer(recorder=recorder)
        for i in range(10):
            tracer.instant(f"event{i}", "t")
        assert recorder.recorded == 10
        assert [e.name for e in recorder.events()] == [
            "event6",
            "event7",
            "event8",
            "event9",
        ]

    def test_mark_incident_snapshots_the_tape(self):
        recorder = FlightRecorder(capacity=2)
        tracer = Tracer(recorder=recorder)
        tracer.instant("a", "t")
        tracer.instant("b", "t")
        tape = recorder.mark_incident("invariant violation")
        tracer.instant("c", "t")  # mutates the ring, not the snapshot
        assert [e.name for e in tape] == ["a", "b"]
        reason, snapshot = recorder.incidents[0]
        assert reason == "invariant violation"
        assert [e.name for e in snapshot] == ["a", "b"]

    def test_retain_false_keeps_only_the_tape(self):
        recorder = FlightRecorder(capacity=2)
        tracer = Tracer(recorder=recorder, retain=False)
        for i in range(5):
            tracer.instant(f"e{i}", "t")
        assert tracer.events == []
        assert [e.name for e in recorder.events()] == ["e3", "e4"]

    def test_dump_lines_are_human_readable(self):
        recorder = FlightRecorder(capacity=4)
        tracer = Tracer(recorder=recorder)
        tracer.instant("request.queued", "replica0", corr="req1", priority=0)
        (line,) = recorder.dump_lines()
        assert "request.queued" in line
        assert "corr=req1" in line
        assert "priority=0" in line

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestChromeExport:
    def test_export_rows_and_metadata(self, tmp_path):
        tracer = Tracer()
        with tracer.span("decode_step", "replica0", batch=2):
            tracer.instant("request.first_token", "replica1", corr="req3")
        path = tmp_path / "trace.json"
        count = tracer.export_chrome_trace(path)
        payload = json.loads(path.read_text())
        rows = payload["traceEvents"]
        assert count == len(rows)
        metadata = [r for r in rows if r["ph"] == "M"]
        assert [(r["pid"], r["args"]["name"]) for r in metadata] == [
            (0, "replica0"),
            (1, "replica1"),
        ]
        instant = next(r for r in rows if r["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["args"]["corr"] == "req3"
        assert instant["pid"] == 1
        begin = next(r for r in rows if r["ph"] == "B")
        assert begin["args"]["batch"] == 2

    def test_export_is_byte_deterministic(self, tmp_path):
        def run(path):
            tracer = Tracer(clock=CountingClock())
            with tracer.span("prefill_chunk", "scheduler", corr="r0", tokens=8):
                tracer.instant("cache.prefix_hit", "scheduler", blocks=2, tokens=16)
            tracer.export_chrome_trace(path)
            return path.read_bytes()

        assert run(tmp_path / "a.json") == run(tmp_path / "b.json")
