"""MetricsRegistry semantics: instruments, merges, snapshots, exposition.

The stats-object ``publish`` hooks (``SchedulerStats``, ``ClusterStats``,
``CollectiveStats``) are exercised where those objects live, in
``tests/serve/test_observability.py``; this module pins the registry
primitives — instrument identity, exact fixed-bucket merges, the
snapshot/delta idiom benchmarks lean on, and the text exposition format.
"""

from __future__ import annotations

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_is_last_write_wins(self):
        gauge = Gauge("free_blocks")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3

    def test_histogram_bins_against_upper_bounds(self):
        hist = Histogram("ttft", (1.0, 2.0, 5.0))
        for sample in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(sample)
        # 0.5 and 1.0 land in <=1; 1.5 in <=2; 3.0 in <=5; 100 overflows.
        assert hist.counts == [2, 1, 1, 1]
        assert hist.total == 5
        assert hist.sum == pytest.approx(106.0)

    def test_histogram_bounds_must_be_increasing_and_nonempty(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("empty", ())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("bad", (1.0, 1.0, 2.0))

    def test_histogram_quantile_reports_bucket_bounds(self):
        hist = Histogram("ttft", (1.0, 2.0, 5.0))
        assert hist.quantile(0.5) == 0.0  # empty
        for sample in (0.5, 1.5, 3.0, 4.0, 100.0):
            hist.observe(sample)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(0.2) == 1.0
        assert hist.quantile(0.4) == 2.0
        assert hist.quantile(0.8) == 5.0
        assert hist.quantile(1.0) == float("inf")  # overflow bucket
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_histogram_merge_requires_identical_bounds(self):
        left = Histogram("ttft", (1.0, 2.0))
        right = Histogram("ttft", (1.0, 2.0))
        left.observe(0.5)
        right.observe(1.5)
        right.observe(9.0)
        left.merge(right)
        assert left.counts == [1, 1, 1]
        assert left.total == 3
        mismatched = Histogram("ttft", (1.0, 3.0))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            left.merge(mismatched)


class TestRegistry:
    def test_instruments_are_identified_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        hist = registry.histogram("h", (1.0, 2.0))
        assert registry.histogram("h") is hist

    def test_name_collisions_across_kinds_fail(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_histogram_needs_bounds_on_creation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="does not exist"):
            registry.histogram("h")
        registry.histogram("h", (1.0,))
        with pytest.raises(ValueError, match="different bucket bounds"):
            registry.histogram("h", (2.0,))

    def test_snapshot_and_delta(self):
        registry = MetricsRegistry()
        registry.counter("served").inc(3)
        registry.histogram("ttft", (1.0, 4.0)).observe(2.0)
        before = registry.snapshot()
        assert before["served"] == 3
        assert before["ttft_count"] == 1
        assert before["ttft_bucket_le_1"] == 0
        assert before["ttft_bucket_le_4"] == 1
        assert before["ttft_bucket_le_inf"] == 1
        registry.counter("served").inc(2)
        registry.counter("born_mid_phase").inc()  # absent from `before`
        delta = registry.delta(before)
        assert delta["served"] == 2
        assert delta["born_mid_phase"] == 1
        assert delta["ttft_count"] == 0

    def test_merge_folds_per_replica_registries(self):
        pool = MetricsRegistry()
        pool.counter("served").inc(1)
        pool.histogram("ttft", (1.0, 2.0)).observe(0.5)
        replica = MetricsRegistry()
        replica.counter("served").inc(4)
        replica.gauge("free").set(7)
        replica.histogram("ttft", (1.0, 2.0)).observe(1.5)
        pool.merge(replica)
        snap = pool.snapshot()
        assert snap["served"] == 5
        assert snap["free"] == 7
        assert snap["ttft_count"] == 2

    def test_render_text_is_sorted_and_prometheus_shaped(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc(2)
        registry.counter("alpha").inc(1)
        registry.gauge("level").set(3)
        registry.histogram("ttft", (1.0,)).observe(0.5)
        text = registry.render_text()
        assert text.index("alpha") < text.index("zeta")
        assert "# TYPE alpha counter" in text
        assert "# TYPE level gauge" in text
        assert '# TYPE ttft histogram' in text
        assert 'ttft_bucket{le="1"} 1' in text
        assert 'ttft_bucket{le="+Inf"} 1' in text
        assert "ttft_count 1" in text
        assert MetricsRegistry().render_text() == ""
