"""Tests of the GLUE-like classification tasks and zero-shot tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    GLUE_TASK_NAMES,
    ZEROSHOT_TASK_NAMES,
    make_all_glue_tasks,
    make_glue_task,
    make_zeroshot_task,
)
from repro.errors import ConfigurationError


class TestGlueTasks:
    def test_all_names_construct(self):
        tasks = make_all_glue_tasks(num_train=64, num_eval=32)
        assert [t.name for t in tasks] == GLUE_TASK_NAMES

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError):
            make_glue_task("SQuAD")

    def test_shapes_and_label_range(self):
        task = make_glue_task("SST-2", seq_len=24, num_train=100, num_eval=40)
        assert task.train_inputs.shape == (100, 24)
        assert task.eval_inputs.shape == (40, 24)
        assert set(np.unique(task.train_labels)) <= {0, 1}

    def test_labels_are_roughly_balanced(self):
        task = make_glue_task("QQP", num_train=400, num_eval=100, seed=3)
        positive_fraction = task.train_labels.mean()
        assert 0.3 < positive_fraction < 0.7

    def test_keyword_task_is_separable_by_construction(self):
        """Positive SST-2 examples must contain a token absent from negatives."""
        task = make_glue_task("SST-2", num_train=200, num_eval=50, seed=0)
        positive_tokens = set(task.train_inputs[task.train_labels == 1].ravel())
        negative_tokens = set(task.train_inputs[task.train_labels == 0].ravel())
        assert positive_tokens - negative_tokens, "keywords should only appear in positives"

    def test_deterministic_per_seed(self):
        first = make_glue_task("MRPC", seed=5)
        second = make_glue_task("MRPC", seed=5)
        np.testing.assert_array_equal(first.train_inputs, second.train_inputs)


class TestZeroShotTasks:
    def test_all_names_construct(self):
        tokens = np.arange(3, 4000) % 500
        for name in ZEROSHOT_TASK_NAMES:
            task = make_zeroshot_task(name, tokens, num_examples=8)
            assert len(task.examples) == 8

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError):
            make_zeroshot_task("TriviaQA", np.arange(1000))

    def test_answer_index_valid_and_correct_choice_matches_corpus(self):
        tokens = np.arange(3, 5003) % 500
        task = make_zeroshot_task("Hellaswag", tokens, num_examples=10, seed=2)
        for example in task.examples:
            assert 0 <= example.answer < len(example.choices)
            context_len = example.context.shape[0]
            # The correct continuation must actually follow the context in the stream.
            joined = np.concatenate([example.context, example.choices[example.answer]])
            matches = False
            for start in range(len(tokens) - len(joined)):
                if np.array_equal(tokens[start : start + len(joined)], joined):
                    matches = True
                    break
            assert matches

    def test_too_short_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            make_zeroshot_task("Hellaswag", np.arange(40), num_examples=10)
