"""Tests of the synthetic corpora."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CORPUS_PRESETS, SPECIAL_TOKENS, build_vocabulary, load_corpus
from repro.data.corpus import CorpusConfig, SyntheticCorpus
from repro.errors import ConfigurationError


class TestVocabulary:
    def test_size_is_exact(self):
        assert len(build_vocabulary(512)) == 512
        assert len(build_vocabulary(128)) == 128

    def test_contains_special_tokens_first(self):
        vocab = build_vocabulary(256)
        assert vocab[: len(SPECIAL_TOKENS)] == SPECIAL_TOKENS

    def test_no_duplicates(self):
        vocab = build_vocabulary(512)
        assert len(set(vocab)) == len(vocab)

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ConfigurationError):
            build_vocabulary(10)


class TestCorpus:
    def test_token_ids_in_range(self):
        corpus = load_corpus("wiki", vocab_size=256, num_tokens=5000)
        assert corpus.tokens.min() >= 0
        assert corpus.tokens.max() < 256

    def test_deterministic_for_same_seed(self):
        first = load_corpus("wiki", vocab_size=256, num_tokens=2000)
        second = load_corpus("wiki", vocab_size=256, num_tokens=2000)
        np.testing.assert_array_equal(first.tokens, second.tokens)

    def test_named_corpora_differ(self):
        wiki = load_corpus("wiki", vocab_size=256, num_tokens=2000)
        ptb = load_corpus("ptb", vocab_size=256, num_tokens=2000)
        assert not np.array_equal(wiki.tokens, ptb.tokens)

    def test_unknown_corpus_rejected(self):
        with pytest.raises(ConfigurationError):
            load_corpus("shakespeare")

    def test_split_fractions(self):
        corpus = load_corpus("pile", vocab_size=256, num_tokens=1000)
        train, evaluation = corpus.split(0.8)
        assert len(train) == 800
        assert len(evaluation) == 200

    def test_decode_produces_text(self):
        corpus = load_corpus("wiki", vocab_size=256, num_tokens=100)
        text = corpus.decode(corpus.tokens[:10])
        assert isinstance(text, str)
        assert len(text.split()) == 10

    def test_all_presets_construct(self):
        for name in CORPUS_PRESETS:
            corpus = load_corpus(name, vocab_size=128, num_tokens=500)
            assert len(corpus.tokens) == 500

    def test_markov_structure_is_predictable(self):
        """Bigram entropy must be far below the uniform entropy (learnable corpus)."""
        corpus = SyntheticCorpus(CorpusConfig(name="wiki", vocab_size=256, num_tokens=20_000, seed=1))
        tokens = corpus.tokens
        pair_counts = {}
        for a, b in zip(tokens[:-1], tokens[1:]):
            pair_counts.setdefault(int(a), {}).setdefault(int(b), 0)
            pair_counts[int(a)][int(b)] += 1
        entropies = []
        for successors in pair_counts.values():
            counts = np.array(list(successors.values()), dtype=float)
            probs = counts / counts.sum()
            entropies.append(-(probs * np.log2(probs)).sum())
        assert np.mean(entropies) < np.log2(256) / 2
