"""Tests of LM dataset windowing and calibration sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import LanguageModelingDataset, calibration_samples
from repro.errors import ConfigurationError


class TestLanguageModelingDataset:
    def test_targets_are_shifted_inputs(self):
        tokens = np.arange(100)
        dataset = LanguageModelingDataset(tokens, seq_len=10)
        inputs, targets = dataset.window(0)
        np.testing.assert_array_equal(targets, inputs + 1)

    def test_windows_are_non_overlapping(self):
        tokens = np.arange(100)
        dataset = LanguageModelingDataset(tokens, seq_len=10)
        first_inputs, _ = dataset.window(0)
        second_inputs, _ = dataset.window(1)
        assert first_inputs[-1] < second_inputs[0]

    def test_length_counts_full_windows_only(self):
        dataset = LanguageModelingDataset(np.arange(35), seq_len=10)
        assert len(dataset) == 3

    def test_too_short_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            LanguageModelingDataset(np.arange(5), seq_len=10)

    def test_seq_len_must_be_at_least_two(self):
        with pytest.raises(ConfigurationError):
            LanguageModelingDataset(np.arange(100), seq_len=1)

    def test_batches_shapes_and_count(self):
        dataset = LanguageModelingDataset(np.arange(201), seq_len=10)
        batches = list(dataset.batches(batch_size=4))
        assert all(b.inputs.shape == (4, 10) for b in batches)
        assert len(batches) == len(dataset) // 4

    def test_shuffled_batches_cover_same_windows(self):
        dataset = LanguageModelingDataset(np.arange(101), seq_len=10)
        plain = np.concatenate([b.inputs.ravel() for b in dataset.batches(2)])
        shuffled = np.concatenate([b.inputs.ravel() for b in dataset.batches(2, shuffle=True, seed=1)])
        assert sorted(plain.tolist()) == sorted(shuffled.tolist())


class TestCalibrationSamples:
    def test_sample_count_and_length(self):
        tokens = np.arange(1000)
        samples = calibration_samples(tokens, seq_len=32, num_samples=5)
        assert len(samples) == 5
        assert all(len(s) == 32 for s in samples)

    def test_deterministic_for_seed(self):
        tokens = np.arange(1000)
        first = calibration_samples(tokens, 16, 3, seed=9)
        second = calibration_samples(tokens, 16, 3, seed=9)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_rejects_too_short_stream(self):
        with pytest.raises(ConfigurationError):
            calibration_samples(np.arange(10), seq_len=32, num_samples=2)
