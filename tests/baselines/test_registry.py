"""Tests of the scheme registry and end-to-end scheme ordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SchemeRequest, available_schemes, build_executor, build_runner
from repro.errors import ConfigurationError
from repro.eval import evaluate_perplexity
from repro.models import TransformerRunner


@pytest.fixture(scope="module")
def scheme_perplexities(request):
    """Perplexity of a representative scheme set at INT8 and INT4 (computed once)."""
    outlier_weights = request.getfixturevalue("outlier_weights")
    calibration = request.getfixturevalue("calibration")
    eval_tokens = request.getfixturevalue("eval_tokens")
    results = {}
    for bits in (8, 4):
        for scheme in ("Base", "per-tensor", "per-column", "SmoothQuant", "ANT", "OliVe", "Tender"):
            runner = build_runner(
                scheme,
                SchemeRequest(
                    weights=outlier_weights,
                    calibration=calibration,
                    bits=bits,
                    options={"num_groups": 10, "row_chunk_size": 16},
                ),
            )
            results[(scheme, bits)] = evaluate_perplexity(
                runner, eval_tokens, seq_len=48, max_windows=4
            )
    return results


class TestRegistry:
    def test_available_schemes_nonempty_and_sorted(self):
        schemes = available_schemes()
        assert "Tender" in schemes and "SmoothQuant" in schemes
        assert schemes == sorted(schemes)

    def test_unknown_scheme_rejected(self, outlier_weights, calibration):
        with pytest.raises(ConfigurationError):
            build_executor("GPTQ", SchemeRequest(weights=outlier_weights, calibration=calibration))

    def test_case_insensitive_lookup(self, outlier_weights, calibration):
        executor = build_executor(
            "tender", SchemeRequest(weights=outlier_weights, calibration=calibration, bits=8)
        )
        assert executor is not None

    def test_build_runner_returns_runner(self, outlier_weights, calibration):
        runner = build_runner(
            "per-row", SchemeRequest(weights=outlier_weights, calibration=calibration, bits=8)
        )
        assert isinstance(runner, TransformerRunner)

    def test_every_registered_scheme_builds_and_runs(self, outlier_weights, calibration, eval_tokens):
        tokens = eval_tokens[:16][None, :]
        for scheme in available_schemes():
            runner = build_runner(
                scheme, SchemeRequest(weights=outlier_weights, calibration=calibration, bits=8)
            )
            logits = runner.logits(tokens)
            assert np.isfinite(logits).all()


class TestPaperOrdering:
    """The qualitative relationships Tables I and II report must hold."""

    def test_int8_tender_close_to_fp(self, scheme_perplexities):
        base = scheme_perplexities[("Base", 8)]
        tender = scheme_perplexities[("Tender", 8)]
        assert tender < base * 1.10

    def test_int8_per_tensor_worse_than_per_column(self, scheme_perplexities):
        assert scheme_perplexities[("per-tensor", 8)] > scheme_perplexities[("per-column", 8)]

    def test_int4_per_tensor_catastrophic(self, scheme_perplexities):
        assert scheme_perplexities[("per-tensor", 4)] > scheme_perplexities[("Base", 4)] * 3

    def test_int4_tender_best_quantized_scheme(self, scheme_perplexities):
        tender = scheme_perplexities[("Tender", 4)]
        for scheme in ("per-tensor", "per-column", "ANT", "OliVe"):
            assert tender <= scheme_perplexities[(scheme, 4)] * 1.05

    def test_int4_tender_within_2x_of_fp(self, scheme_perplexities):
        assert scheme_perplexities[("Tender", 4)] < scheme_perplexities[("Base", 4)] * 2.0

    def test_int4_ant_much_worse_than_tender(self, scheme_perplexities):
        assert scheme_perplexities[("ANT", 4)] > scheme_perplexities[("Tender", 4)] * 2
