"""Tests of the baseline quantization executors (SmoothQuant, ANT, OliVe, ...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ANTExecutor,
    LLMInt8Executor,
    MSFPExecutor,
    MXFP4Executor,
    OliVeExecutor,
    RPTQExecutor,
    SMXExecutor,
    SmoothQuantExecutor,
    UniformQuantExecutor,
    kmeans_1d,
    msfp_quantize,
    mxfp4_quantize,
    quantize_to_codebook,
    smx_quantize,
)
from repro.errors import CalibrationError
from repro.models import capture_activations, run_calibration
from repro.quant import ActivationObserver, Granularity


@pytest.fixture(scope="module")
def probe(rng_module=np.random.default_rng(77)):
    """A synthetic activation with one scaled and one shifted outlier channel."""
    x = rng_module.normal(size=(64, 24))
    x[:, 3] *= 40.0
    x[:, 11] += 25.0
    weight = rng_module.normal(size=(24, 16)) * 0.2
    return x, weight


def relative_error(result, reference):
    return float(np.linalg.norm(result - reference) / np.linalg.norm(reference))


class TestUniformExecutor:
    def test_per_column_best_per_tensor_worst(self, probe):
        x, weight = probe
        reference = x @ weight
        errors = {}
        for granularity in (Granularity.PER_TENSOR, Granularity.PER_ROW, Granularity.PER_COLUMN):
            executor = UniformQuantExecutor(8, activation_granularity=granularity)
            errors[granularity] = relative_error(executor.project("p", x, weight, None), reference)
        assert errors[Granularity.PER_COLUMN] <= errors[Granularity.PER_ROW]
        assert errors[Granularity.PER_ROW] <= errors[Granularity.PER_TENSOR]

    def test_attention_matmul_passthrough_and_quantized(self, rng):
        a = rng.normal(size=(1, 2, 4, 8))
        b = rng.normal(size=(1, 2, 8, 4))
        plain = UniformQuantExecutor(8)
        np.testing.assert_allclose(plain.attention_matmul("qk", a, b), a @ b)
        quantized = UniformQuantExecutor(8, quantize_attention=True)
        result = quantized.attention_matmul("qk", a, b)
        assert not np.allclose(result, a @ b)
        assert relative_error(result, a @ b) < 0.05

    def test_weight_cache_reused(self, probe):
        x, weight = probe
        executor = UniformQuantExecutor(8)
        executor.project("site", x, weight, None)
        cached = executor._weight_cache["site"]
        executor.project("site", x, weight, None)
        assert executor._weight_cache["site"] is cached


class TestSmoothQuant:
    def _observer_for(self, x):
        observer = ActivationObserver()
        observer.observe("site", x)
        return observer

    def test_migration_flattens_scaled_outliers(self, probe):
        x, weight = probe
        reference = x @ weight
        smooth = SmoothQuantExecutor(8, self._observer_for(x))
        naive = UniformQuantExecutor(8, activation_granularity=Granularity.PER_ROW)
        assert relative_error(smooth.project("site", x, weight, None), reference) < relative_error(
            naive.project("site", x, weight, None), reference
        )

    def test_missing_calibration_raises(self, probe):
        x, weight = probe
        executor = SmoothQuantExecutor(8, ActivationObserver())
        with pytest.raises(CalibrationError):
            executor.project("site", x, weight, None)

    def test_invalid_migration_strength_rejected(self):
        with pytest.raises(CalibrationError):
            SmoothQuantExecutor(8, ActivationObserver(), migration_strength=1.5)

    def test_end_to_end_observer_integration(self, outlier_weights, calibration, eval_tokens):
        observer = run_calibration(outlier_weights, calibration)
        executor = SmoothQuantExecutor(8, observer)
        x = capture_activations(outlier_weights, eval_tokens[:16])["block0.attn.q_proj"]
        weight = outlier_weights.blocks[0].attn.wq
        result = executor.project("block0.attn.q_proj", x, weight, None)
        assert relative_error(result, x @ weight) < 0.25


class TestLLMInt8:
    def test_outlier_channels_kept_exact(self, probe):
        x, weight = probe
        reference = x @ weight
        executor = LLMInt8Executor(8, outlier_threshold=6.0)
        result = executor.project("site", x, weight, None)
        assert executor.outlier_columns_seen >= 2
        assert relative_error(result, reference) < 0.02

    def test_no_outliers_behaves_like_int8(self, rng):
        x = rng.normal(size=(16, 8))
        weight = rng.normal(size=(8, 4))
        executor = LLMInt8Executor(8, outlier_threshold=1e9)
        result = executor.project("site", x, weight, None)
        assert executor.outlier_columns_seen == 0
        assert relative_error(result, x @ weight) < 0.02


class TestANT:
    def test_codebook_quantization_respects_scale(self):
        codebook = np.array([-1.0, -0.5, 0.0, 0.5, 1.0])
        values = np.array([0.26, -0.9, 2.0])
        result = quantize_to_codebook(values, codebook, scale=1.0)
        np.testing.assert_allclose(result, [0.5, -1.0, 1.0])

    def test_datatype_selection_varies_with_distribution(self, rng):
        executor = ANTExecutor(4)
        bell = rng.normal(size=(64, 64))
        executor.encode_activation("bell", bell)
        uniform_ints = rng.integers(-7, 8, size=(64, 64)).astype(float)
        executor.encode_activation("uniform", uniform_ints)
        assert executor.chosen_datatypes["bell.act"] in ("int", "flint", "pot")
        assert executor.chosen_datatypes["uniform.act"] in ("int", "flint", "pot")

    def test_reconstruction_better_than_nothing_for_outliers(self, probe):
        x, weight = probe
        executor = ANTExecutor(8)
        encoded = executor.encode_activation("site", x)
        assert relative_error(encoded, x) < 0.2

    def test_zero_tensor_passthrough(self):
        executor = ANTExecutor(4)
        np.testing.assert_allclose(executor.encode_activation("z", np.zeros((4, 4))), 0.0)


class TestOliVe:
    def test_outliers_preserved_approximately(self, probe):
        x, weight = probe
        executor = OliVeExecutor(8)
        encoded = executor.encode_activation("site", x)
        outlier_mask = np.abs(x) > 6 * np.abs(x).mean()
        if outlier_mask.any():
            rel = np.abs(encoded[outlier_mask] - x[outlier_mask]) / np.abs(x[outlier_mask])
            assert rel.max() < 0.15

    def test_some_victims_are_pruned(self, probe):
        x, _ = probe
        executor = OliVeExecutor(4)
        encoded = executor.encode_activation("site", x)
        flat_x = x.reshape(-1)
        flat_encoded = encoded.reshape(-1)
        pruned = (flat_encoded == 0.0) & (np.abs(flat_x) > 1e-3)
        assert pruned.any()

    def test_int8_reconstruction_beats_int4(self, probe):
        x, _ = probe
        err8 = relative_error(OliVeExecutor(8).encode_activation("s", x), x)
        err4 = relative_error(OliVeExecutor(4).encode_activation("s", x), x)
        assert err8 < err4


class TestBlockFloat:
    def test_msfp_error_bounded_for_uniform_blocks(self, rng):
        tensor = rng.normal(size=(8, 32))
        encoded = msfp_quantize(tensor, mantissa_bits=4, block_size=8)
        assert relative_error(encoded, tensor) < 0.2

    def test_msfp_column_blocks_help_channel_outliers(self, probe):
        x, _ = probe
        row_blocks = msfp_quantize(x, mantissa_bits=4, block_size=8, axis=-1)
        column_blocks = msfp_quantize(x, mantissa_bits=4, block_size=4, axis=0)
        assert relative_error(column_blocks, x) < relative_error(row_blocks, x)

    def test_smx_is_coarser_than_mxfp4(self, probe):
        x, _ = probe
        assert relative_error(smx_quantize(x, 2, 8), x) > relative_error(mxfp4_quantize(x, 8), x)

    def test_block_padding_handles_non_multiple_sizes(self, rng):
        tensor = rng.normal(size=(5, 13))
        encoded = mxfp4_quantize(tensor, block_size=8)
        assert encoded.shape == tensor.shape

    def test_executors_encode_both_operands(self, probe, rng):
        x, weight = probe
        for executor in (MSFPExecutor(), MSFPExecutor(outlier_variant=True), SMXExecutor(), MXFP4Executor()):
            result = executor.project("site", x, weight, None)
            assert result.shape == (x.shape[0], weight.shape[1])
            assert not np.allclose(result, x @ weight)


class TestRPTQ:
    def test_kmeans_groups_similar_values(self):
        values = np.array([0.1, 0.11, 0.12, 5.0, 5.2, 100.0])
        assignment = kmeans_1d(values, num_clusters=3, seed=0)
        assert assignment[0] == assignment[1] == assignment[2]
        assert assignment[3] == assignment[4]
        assert assignment[5] != assignment[0]

    def test_clustered_quantization_beats_per_tensor(self, probe):
        x, weight = probe
        observer = ActivationObserver()
        observer.observe("site", x)
        rptq = RPTQExecutor(4, observer, num_clusters=6)
        naive = UniformQuantExecutor(4, activation_granularity=Granularity.PER_TENSOR)
        reference = x @ weight
        assert relative_error(rptq.project("site", x, weight, None), reference) < relative_error(
            naive.project("site", x, weight, None), reference
        )

    def test_missing_calibration_raises(self, probe):
        x, weight = probe
        with pytest.raises(CalibrationError):
            RPTQExecutor(8, ActivationObserver()).project("site", x, weight, None)
