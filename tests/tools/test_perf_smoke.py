"""Tier-1 perf gate: the serving hot paths must stay ahead of reference.

``tools/check_perf_smoke.py`` lives in ``tools/`` so it can also run
standalone (and in any external CI); this test makes it part of the tier-1
pytest run so a future PR cannot silently route the decode hot path back
through the slow reference kernels — or break prefix-cache matching, whose
failure mode is a silent throughput regression (zero hits), not an error.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestPerfSmoke:
    def test_fast_decode_path_not_slower_than_reference(self):
        environment = dict(os.environ)
        source_path = str(REPO_ROOT / "src")
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = (
            source_path if not existing else os.pathsep.join([source_path, existing])
        )
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_perf_smoke.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=environment,
        )
        assert result.returncode == 0, f"perf smoke failed:\n{result.stdout}{result.stderr}"
        assert "perf smoke ok (fast decode path" in result.stdout
        assert "perf smoke ok (prefix cache served" in result.stdout
        assert "perf smoke ok (speculation accepted" in result.stdout
        assert "perf smoke ok (fused paged attention" in result.stdout
        assert "perf smoke ok (preemption token-identical" in result.stdout
        assert "perf smoke ok (observability disabled-path" in result.stdout
        assert "perf smoke ok (serving stress clean" in result.stdout
        assert "perf smoke ok (fault tolerance token-identical" in result.stdout
