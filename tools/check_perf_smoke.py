#!/usr/bin/env python
"""Perf smoke gate: the serving hot paths must not regress below reference.

Run from the repository root (tier-1 runs it via ``tests/tools``):

    PYTHONPATH=src python tools/check_perf_smoke.py

Nine checks run back to back:

1. **Fast kernels** — builds the shared synthetic decode workload from
   ``repro.core.perf`` (no model training, no checkpoint cache — the same
   fixture ``benchmarks/bench_executor_kernels.py`` measures), verifies
   that the fast Index-Buffer projection path is bit-identical to the
   reference per-chunk loop, then times both.  The fast path has to beat
   the reference by ``REQUIRED_SPEEDUP`` — a deliberately loose fraction of
   the ~10-20x the kernels deliver on this workload (see
   ``BENCH_kernels.json``), so a future PR that accidentally routes the hot
   path back through per-group gathers or full-array overflow scans fails
   tier-1 instead of silently shipping the regression, while machine noise
   alone cannot flake the gate.
2. **Prefix-cached scheduler** — serves a shared-template trace through
   ``repro.serve.Scheduler`` (random-weight model, no training) with the
   prefix cache on and off, and gates on the *deterministic* accounting:
   generated tokens must be identical, the cache must serve well over half
   of the prompt tokens (a broken radix match silently degrades to zero
   hits — exactly the regression this catches), and chunked prefill must
   keep active decodes advancing every iteration.

3. **Speculative decoding** — serves a repetition-heavy trace (random
   weights again, but with *periodic position embeddings* so greedy
   generation provably enters a short cycle — no training needed) with
   ``speculation=SpecConfig(PromptLookupDraft())`` and gates on the
   deterministic accounting: generated tokens must be bit-identical to the
   non-speculative run (with and without the prefix cache), the drafter's
   accept rate must clear a floor, and the decode forward count must
   actually drop — a broken verify/rollback path fails parity, a broken
   drafter silently degrades to zero accepts, and both fail here instead
   of shipping.

4. **Fused paged attention** — serves the same random-weight model with
   the fused block-table attention on and off and gates on the
   deterministic accounting: generated tokens must be identical, the
   fused run must move **zero** dense KV bytes
   (``PagedKVCache.gather_bytes``), and the reference run must tally at
   least the analytic floor — a fused path that silently falls back to
   gathering fails the zero check, and a broken counter fails the floor.

5. **Priority preemption** — serves a tiny two-class trace (background
   stream plus an urgent burst) with FIFO and with preemptive scheduling
   and gates on the deterministic accounting: every request's tokens must
   be bit-identical across the two policies (the free-then-replay resume
   path must not perturb a single logit), at least one preemption must
   actually fire, the urgent class's tick-based p99 TTFT must improve by
   ``REQUIRED_TTFT_SPEEDUP``, and aggregate generated tokens per forwarded
   row must stay within ``REQUIRED_WORK_RATIO`` of FIFO — a resume path
   that stops publishing victims' blocks fails the work gate, and a
   replay that re-samples fails parity.

6. **Observability** — serves the preemption gate's two-class trace with
   tracing disabled (``tracer=None``) and enabled (``repro.obs.Tracer``)
   and gates on three claims: generated tokens must be bit-identical
   (instrumentation is observation-only), the disabled path's measured
   residue — one ``is not None`` branch per emit site the enabled run
   proves hot — must stay under ``MAX_DISABLED_TRACE_OVERHEAD`` of the
   serve, and the exported Chrome trace JSON must load back with every
   required lifecycle event type, balanced spans, and named tracks — an
   emit site doing work outside its guard fails the overhead gate, and
   one that went dark fails the taxonomy check.

7. **Serving stress** — replays short ``ServingStressHarness`` schedules
   (mixed admit/fork/decode/truncate/preempt/evict/replica_kill/
   replica_stall against a tiny paged pool) and fails on any
   ``InvariantViolation`` — the same invariant web tier-1 exercises, kept
   in the standalone gate so external CI without pytest still audits the
   pool.

8. **Fault tolerance** — serves the same trace through a 3-replica
   ``repro.serve.cluster.ReplicaPool`` fault-free and under scripted
   mid-trace replica kills, and gates on the deterministic accounting:
   every surviving request's tokens must be bit-identical to the
   fault-free pool (checkpoint/replay recovery must not perturb a token),
   at least one recovery must actually fire, and chaos goodput (generated
   tokens per forwarded row) must stay within ``REQUIRED_FT_GOODPUT`` of
   fault-free — a recovery path that recomputes whole contexts instead of
   riding prefix hits fails the goodput floor, and one that re-samples
   fails parity.

9. **Tensor parallel** — serves a Tender-quantized random-weight model
   solo and as a 2-shard ``repro.serve.ShardedRunner`` whose collective
   transport runs under scripted corruption/delay/duplication, then under
   a scripted shard kill through a ``ReplicaPool`` of shard groups, and
   gates on the deterministic accounting: sharded tokens must be
   bit-identical to solo (column-parallel sharding never splits the
   channel axis Tender's calibration tables index), at least one
   corrupted collective must be *caught by its checksum and retried*, at
   least one shard-kill recovery must fire through the checkpoint/replay
   path, and chaos goodput must stay within ``REQUIRED_FT_GOODPUT`` of
   fault-free — a transport that silently reduces a corrupted payload
   fails parity, and a recovery that recomputes whole contexts fails the
   goodput floor.

Exit status 0 when clean; 1 with a one-line diagnosis otherwise.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import TenderConfig, TenderExecutor
from repro.core.perf import best_of, decode_projection_operands, synthetic_projection_site

#: The fast path must be at least this many times faster than the reference.
REQUIRED_SPEEDUP = 2.0
REPEATS = 25
ATTEMPTS = 4
#: The prefix cache must serve at least this fraction of the shared trace's
#: prompt tokens (the trace is built with ~78% overlap).
REQUIRED_HIT_RATE = 0.5
#: The prompt-lookup drafter must land at least this fraction of its draft
#: tokens on the periodic trace (measured ~0.9; the generation is a strict
#: cycle, so a healthy drafter cannot miss).
REQUIRED_ACCEPT_RATE = 0.5
#: Preemption must improve the urgent class's deterministic (tick-based)
#: p99 TTFT by at least this factor on the two-class trace (measured ~8.7x;
#: the floor matches the headline gate in ``bench_generate_decode.py``).
REQUIRED_TTFT_SPEEDUP = 1.5
#: Preemptive scheduling must keep aggregate generated tokens per forwarded
#: row within 5% of FIFO (measured ~0.99 — prefix-published victim blocks
#: make replay nearly free; a resume path that recomputes from scratch
#: lands well below this).
REQUIRED_WORK_RATIO = 0.95
#: Stress seeds and ops per seed for the standalone invariant sweep (tier-1
#: runs the deeper parametrized suite in ``tests/serve``).
STRESS_SEEDS = 2
STRESS_OPS = 120
#: A chaos run with scripted replica kills must keep at least this fraction
#: of the fault-free pool's goodput (generated tokens per forwarded row) —
#: measured well above 0.9 because recovery replays ride prefix-cache hits;
#: a recovery path that recomputes whole contexts from scratch lands below.
REQUIRED_FT_GOODPUT = 0.8
#: The disabled tracing path (``tracer=None``) may cost at most this
#: fraction of the serve: the measured per-``is not None`` guard cost times
#: the emit sites an enabled run proves are on the hot path (measured
#: ~0.01% — a future emit site that builds attribute dicts outside its
#: guard blows well past this).
MAX_DISABLED_TRACE_OVERHEAD = 0.01


def _tiny_serving_runner():
    """A random-weight TransformerRunner (no training, no checkpoint cache)."""
    from repro.models.inference import TransformerRunner
    from repro.models.weights import (
        AttentionWeights,
        BlockWeights,
        FeedForwardWeights,
        LayerNormWeights,
        ModelWeights,
    )
    from repro.nn import TransformerConfig

    config = TransformerConfig(
        vocab_size=64, d_model=32, num_heads=2, num_layers=2, d_ff=64, max_seq_len=128, seed=0
    )
    rng = np.random.default_rng(7)

    def dense(shape):
        return rng.normal(scale=0.25, size=shape)

    def norm():
        return LayerNormWeights(gain=np.ones(config.d_model), bias=np.zeros(config.d_model))

    blocks = [
        BlockWeights(
            ln_attn=norm(),
            attn=AttentionWeights(
                wq=dense((config.d_model, config.d_model)), bq=np.zeros(config.d_model),
                wk=dense((config.d_model, config.d_model)), bk=np.zeros(config.d_model),
                wv=dense((config.d_model, config.d_model)), bv=np.zeros(config.d_model),
                wo=dense((config.d_model, config.d_model)), bo=np.zeros(config.d_model),
            ),
            ln_ffn=norm(),
            ffn=FeedForwardWeights(
                w1=dense((config.d_model, config.d_ff)), b1=np.zeros(config.d_ff),
                w2=dense((config.d_ff, config.d_model)), b2=np.zeros(config.d_model),
            ),
        )
        for _ in range(config.num_layers)
    ]
    weights = ModelWeights(
        config=config,
        token_embedding=dense((config.vocab_size, config.d_model)),
        position_embedding=dense((config.max_seq_len, config.d_model)),
        blocks=blocks,
        ln_final=norm(),
        lm_head=dense((config.d_model, config.vocab_size)),
    )
    return TransformerRunner(weights)


def _serve(runner, prompts, prefix_cache, prefill_chunk=None, speculation=None, max_new_tokens=3):
    """One scheduler run over ``prompts``; returns (outputs by id, stats)."""
    from repro.serve import GenerationConfig, Scheduler

    scheduler = Scheduler(
        runner,
        GenerationConfig(max_new_tokens=max_new_tokens),
        max_batch_size=3,
        block_size=8,
        prefix_cache=prefix_cache,
        prefill_chunk=prefill_chunk,
        speculation=speculation,
        record_logits=False,
    )
    for prompt in prompts:
        scheduler.submit(prompt)
    outputs = {output.request_id: output for output in scheduler.run()}
    return outputs, scheduler.stats


def _periodic_spec_runner(period: int = 7):
    """A random-weight runner whose greedy generation provably cycles.

    The position embedding repeats every ``period`` positions and dominates
    the (deliberately small) token embeddings and attention weights, so the
    residual stream — and therefore the greedy next token — is essentially
    a function of ``position mod period``: generation enters a strict
    ``period``-cycle immediately.  That gives the speculative gate a
    repetition-heavy workload that needs no training and cannot drift.
    """
    from repro.models.inference import TransformerRunner
    from repro.models.weights import (
        AttentionWeights,
        BlockWeights,
        FeedForwardWeights,
        LayerNormWeights,
        ModelWeights,
    )
    from repro.nn import TransformerConfig

    config = TransformerConfig(
        vocab_size=64, d_model=32, num_heads=2, num_layers=2, d_ff=64, max_seq_len=128, seed=0
    )
    rng = np.random.default_rng(7)

    def dense(shape, scale=0.05):
        return rng.normal(scale=scale, size=shape)

    def norm():
        return LayerNormWeights(gain=np.ones(config.d_model), bias=np.zeros(config.d_model))

    pattern = rng.normal(scale=1.0, size=(period, config.d_model))
    position = np.tile(pattern, (config.max_seq_len // period + 1, 1))[: config.max_seq_len]
    blocks = [
        BlockWeights(
            ln_attn=norm(),
            attn=AttentionWeights(
                wq=dense((config.d_model, config.d_model)), bq=np.zeros(config.d_model),
                wk=dense((config.d_model, config.d_model)), bk=np.zeros(config.d_model),
                wv=dense((config.d_model, config.d_model)), bv=np.zeros(config.d_model),
                wo=dense((config.d_model, config.d_model)), bo=np.zeros(config.d_model),
            ),
            ln_ffn=norm(),
            ffn=FeedForwardWeights(
                w1=dense((config.d_model, config.d_ff)), b1=np.zeros(config.d_ff),
                w2=dense((config.d_ff, config.d_model)), b2=np.zeros(config.d_model),
            ),
        )
        for _ in range(config.num_layers)
    ]
    weights = ModelWeights(
        config=config,
        token_embedding=dense((config.vocab_size, config.d_model)),
        position_embedding=position,
        blocks=blocks,
        ln_final=norm(),
        lm_head=rng.normal(scale=0.5, size=(config.d_model, config.vocab_size)),
    )
    return TransformerRunner(weights)


def check_speculative_smoke() -> int:
    """Deterministic speculative-decoding parity and accept-rate gate."""
    from repro.serve import GenerationConfig, GenerationEngine, PromptLookupDraft, SpecConfig

    runner = _periodic_spec_runner()
    rng = np.random.default_rng(11)
    seeds = [rng.integers(0, 64, size=8) for _ in range(6)]
    # Two-pass extractive trace: embed each request's own continuation in
    # its prompt so the drafter can read the cycle from the first step.
    warm = GenerationEngine(runner).generate(seeds, GenerationConfig(max_new_tokens=16))
    prompts = [np.concatenate([seed, body]) for seed, body in zip(seeds, warm.generated)]

    def speculation():
        return SpecConfig(drafter=PromptLookupDraft(), draft_tokens=4, max_draft=8)

    outputs_off, stats_off = _serve(runner, prompts, prefix_cache=False, max_new_tokens=16)
    outputs_on, stats_on = _serve(
        runner, prompts, prefix_cache=False, speculation=speculation(), max_new_tokens=16
    )
    for request_id, output in outputs_off.items():
        if not np.array_equal(output.generated, outputs_on[request_id].generated):
            print(
                f"perf smoke FAILED: request {request_id} generated different tokens "
                f"under speculative decoding"
            )
            return 1
    accept_rate = stats_on.spec_accept_rate()
    if accept_rate < REQUIRED_ACCEPT_RATE:
        print(
            f"perf smoke FAILED: drafter accept rate {accept_rate:.0%} on the periodic "
            f"trace (required >= {REQUIRED_ACCEPT_RATE:.0%}) — drafting or verification regressed"
        )
        return 1
    if stats_on.decode_iterations >= stats_off.decode_iterations:
        print(
            "perf smoke FAILED: speculation did not reduce decode forwards "
            f"({stats_on.decode_iterations} vs {stats_off.decode_iterations})"
        )
        return 1
    outputs_combo, _ = _serve(
        runner,
        prompts,
        prefix_cache=True,
        prefill_chunk=8,
        speculation=speculation(),
        max_new_tokens=16,
    )
    for request_id, output in outputs_off.items():
        if not np.array_equal(output.generated, outputs_combo[request_id].generated):
            print(
                f"perf smoke FAILED: request {request_id} generated different tokens "
                f"with speculation + prefix cache + chunked prefill combined"
            )
            return 1
    print(
        f"perf smoke ok (speculation accepted {accept_rate:.0%} of drafts, "
        f"{stats_off.decode_iterations} -> {stats_on.decode_iterations} decode forwards)"
    )
    return 0


def check_serving_smoke() -> int:
    """Deterministic prefix-cache and chunked-prefill regression gate."""
    runner = _tiny_serving_runner()
    rng = np.random.default_rng(3)
    template = rng.integers(0, 64, size=36)
    prompts = [
        np.concatenate([template, rng.integers(0, 64, size=10)]) for _ in range(8)
    ]
    outputs_off, stats_off = _serve(runner, prompts, prefix_cache=False)
    outputs_on, stats_on = _serve(runner, prompts, prefix_cache=True)
    for request_id, output in outputs_off.items():
        if not np.array_equal(output.generated, outputs_on[request_id].generated):
            print(
                f"perf smoke FAILED: request {request_id} generated different tokens "
                f"with the prefix cache enabled"
            )
            return 1
    hit_rate = stats_on.prefix_hit_rate()
    if hit_rate < REQUIRED_HIT_RATE:
        print(
            f"perf smoke FAILED: prefix cache served only {hit_rate:.0%} of prompt "
            f"tokens (required >= {REQUIRED_HIT_RATE:.0%}) — prefix matching regressed"
        )
        return 1
    if stats_on.prefill_tokens >= stats_off.prefill_tokens:
        print(
            "perf smoke FAILED: the prefix cache did not reduce prefilled prompt "
            f"tokens ({stats_on.prefill_tokens} vs {stats_off.prefill_tokens})"
        )
        return 1
    outputs_chunked, _ = _serve(runner, prompts, prefix_cache=True, prefill_chunk=8)
    for request_id, output in outputs_off.items():
        if not np.array_equal(output.generated, outputs_chunked[request_id].generated):
            print(
                f"perf smoke FAILED: request {request_id} generated different tokens "
                f"under chunked prefill"
            )
            return 1
    print(
        f"perf smoke ok (prefix cache served {hit_rate:.0%} of prompt tokens, "
        f"{stats_off.prefill_tokens} -> {stats_on.prefill_tokens} prefilled)"
    )
    return 0


def check_fast_kernels() -> int:
    """Fast Index-Buffer projection vs the reference per-chunk loop."""
    config = TenderConfig(bits=8, num_groups=8, row_chunk_size=32)
    params = synthetic_projection_site(config)
    fast = TenderExecutor(params, config, implicit=True, fast_kernels=True)
    reference = TenderExecutor(params, config, implicit=True, fast_kernels=False)
    x, positions, weight = decode_projection_operands()

    fast_out = fast.project("site", x, weight, None, positions=positions)
    reference_out = reference.project("site", x, weight, None, positions=positions)
    if not np.array_equal(fast_out, reference_out):
        print("perf smoke FAILED: fast projection is not bit-identical to the reference")
        return 1

    speedup = 0.0
    for _ in range(ATTEMPTS):
        reference_s = best_of(
            lambda: reference.project("site", x, weight, None, positions=positions), REPEATS
        )
        fast_s = best_of(
            lambda: fast.project("site", x, weight, None, positions=positions), REPEATS
        )
        speedup = max(speedup, reference_s / fast_s)
        if speedup >= 2 * REQUIRED_SPEEDUP:
            break
    if speedup < REQUIRED_SPEEDUP:
        print(
            f"perf smoke FAILED: fast decode path only {speedup:.2f}x the reference "
            f"(required >= {REQUIRED_SPEEDUP:.1f}x) — the fast kernels regressed"
        )
        return 1
    print(f"perf smoke ok (fast decode path {speedup:.1f}x over reference)")
    return 0


def check_fused_attention() -> int:
    """Deterministic fused paged-attention parity and KV-traffic gate."""
    from repro.serve import GenerationConfig, Scheduler

    runner = _tiny_serving_runner()
    rng = np.random.default_rng(5)
    # Lengths straddle the block size (8): exactly at, one past, and mid-block.
    prompts = [rng.integers(0, 64, size=size) for size in (16, 17, 24, 9)]

    def serve(fused):
        scheduler = Scheduler(
            runner,
            GenerationConfig(max_new_tokens=4),
            max_batch_size=3,
            block_size=8,
            record_logits=False,
        )
        before = runner.fused_paged_attention
        runner.fused_paged_attention = fused
        try:
            for prompt in prompts:
                scheduler.submit(prompt)
            outputs = {output.request_id: output for output in scheduler.run()}
        finally:
            runner.fused_paged_attention = before
        return outputs, scheduler.cache.gather_bytes

    outputs_fused, fused_bytes = serve(True)
    outputs_reference, reference_bytes = serve(False)
    for request_id, output in outputs_reference.items():
        if not np.array_equal(output.generated, outputs_fused[request_id].generated):
            print(
                f"perf smoke FAILED: request {request_id} generated different tokens "
                f"under fused paged attention"
            )
            return 1
    if fused_bytes != 0:
        print(
            f"perf smoke FAILED: fused paged attention gathered {fused_bytes} dense "
            f"KV bytes (required exactly 0) — the fused path fell back to gathering"
        )
        return 1
    # The reference path re-gathers every request's whole K/V history on every
    # decode step.  A loose analytic floor — one decode step's dense K+V for
    # the shortest prompt alone, per layer — catches a broken counter without
    # depending on scheduler batching details.
    config = runner.weights.config
    d_head = config.d_model // config.num_heads
    floor = (
        config.num_layers * 2 * min(len(p) for p in prompts) * config.num_heads * d_head * 8
    )
    if reference_bytes < floor:
        print(
            f"perf smoke FAILED: reference path gathered only {reference_bytes} dense "
            f"KV bytes (floor {floor}) — the gather-bytes counter regressed"
        )
        return 1
    print(
        f"perf smoke ok (fused paged attention token-identical, 0 vs "
        f"{reference_bytes} gathered KV bytes)"
    )
    return 0


def check_preemption_smoke() -> int:
    """Deterministic preemption-parity, TTFT, and recompute-cost gate."""
    from repro.serve import GenerationConfig, Scheduler

    runner = _tiny_serving_runner()
    rng = np.random.default_rng(13)
    # Background stream from t=0 saturates the batch-2 scheduler with long
    # generations; the urgent burst lands at t=8 with short prompts and
    # 3-token budgets — the traffic whose TTFT preemption protects.
    low = [(rng.integers(0, 64, size=6 + i % 3), 5, 24, 0.8 * i) for i in range(4)]
    high = [(rng.integers(0, 64, size=4 + i % 2), 0, 3, 8.0 + 0.5 * i) for i in range(4)]

    def serve(preemption):
        # Block size 4 keeps the unpublished tail a resumed victim must
        # re-prefill short, so replay rides the prefix cache.
        scheduler = Scheduler(
            runner,
            GenerationConfig(max_new_tokens=24),
            max_batch_size=2,
            block_size=4,
            prefix_cache=True,
            preemption=preemption,
            record_logits=False,
        )
        urgent_ids = []
        for group in (low, high):
            for prompt, priority, budget, arrival in group:
                request_id = scheduler.submit(
                    prompt,
                    max_new_tokens=budget,
                    arrival_time=arrival,
                    priority=priority if preemption else 0,
                )
                if group is high:
                    urgent_ids.append(request_id)
        outputs = {output.request_id: output for output in scheduler.run()}
        return outputs, scheduler.stats, urgent_ids

    outputs_fifo, stats_fifo, urgent_fifo = serve(False)
    outputs_preempt, stats_preempt, urgent_preempt = serve(True)
    for request_id, output in outputs_fifo.items():
        if not np.array_equal(output.generated, outputs_preempt[request_id].generated):
            print(
                f"perf smoke FAILED: request {request_id} generated different tokens "
                f"under preemptive scheduling — the free-then-replay resume is not "
                f"bit-exact"
            )
            return 1
    if stats_preempt.preemptions < 1:
        print(
            "perf smoke FAILED: the two-class trace triggered no preemption — "
            "the priority policy never fired, so the gate proves nothing"
        )
        return 1

    def p99_ttft(outputs, request_ids):
        waits = [
            outputs[rid].first_token_at - outputs[rid].arrival_time for rid in request_ids
        ]
        return float(np.percentile(waits, 99))

    ttft_fifo = p99_ttft(outputs_fifo, urgent_fifo)
    ttft_preempt = p99_ttft(outputs_preempt, urgent_preempt)
    speedup = ttft_fifo / ttft_preempt
    if speedup < REQUIRED_TTFT_SPEEDUP:
        print(
            f"perf smoke FAILED: preemption improved urgent p99 TTFT only "
            f"{speedup:.2f}x ({ttft_fifo:.1f} -> {ttft_preempt:.1f} ticks, required "
            f">= {REQUIRED_TTFT_SPEEDUP:.1f}x) — the priority policy regressed"
        )
        return 1
    tokens = sum(len(output.generated) for output in outputs_fifo.values())
    work_fifo = tokens / (stats_fifo.prefill_tokens + tokens)
    work_preempt = tokens / (stats_preempt.prefill_tokens + tokens)
    work_ratio = work_preempt / work_fifo
    if work_ratio < REQUIRED_WORK_RATIO:
        print(
            f"perf smoke FAILED: preemption cut tokens-per-forwarded-row to "
            f"{work_ratio:.0%} of FIFO (required >= {REQUIRED_WORK_RATIO:.0%}) — "
            f"victim replay is recomputing instead of riding the prefix cache"
        )
        return 1
    print(
        f"perf smoke ok (preemption token-identical, urgent p99 TTFT "
        f"{speedup:.1f}x, work ratio {work_ratio:.0%})"
    )
    return 0


def check_observability() -> int:
    """Zero-cost-disabled tracing gate, span-taxonomy check, export validation."""
    import json
    import os
    import tempfile
    import time

    from repro.obs import CountingClock, Tracer
    from repro.serve import GenerationConfig, Scheduler

    runner = _tiny_serving_runner()
    rng = np.random.default_rng(13)
    # The same two-class preemption trace check_preemption_smoke gates on —
    # it exercises the whole span taxonomy (queue/admit/prefill/decode/
    # preempt/finish plus cache events) in a fraction of a second.
    low = [(rng.integers(0, 64, size=6 + i % 3), 5, 24, 0.8 * i) for i in range(4)]
    high = [(rng.integers(0, 64, size=4 + i % 2), 0, 3, 8.0 + 0.5 * i) for i in range(4)]

    def serve(tracer):
        scheduler = Scheduler(
            runner,
            GenerationConfig(max_new_tokens=24),
            max_batch_size=2,
            block_size=4,
            prefix_cache=True,
            preemption=True,
            record_logits=False,
            tracer=tracer,
        )
        for group in (low, high):
            for prompt, priority, budget, arrival in group:
                scheduler.submit(
                    prompt, max_new_tokens=budget, arrival_time=arrival, priority=priority
                )
        start = time.perf_counter()
        outputs = {output.request_id: output for output in scheduler.run()}
        elapsed = time.perf_counter() - start
        return outputs, elapsed

    disabled_times = []
    enabled_times = []
    tracer = None
    for _ in range(ATTEMPTS):
        outputs_off, elapsed_off = serve(None)
        tracer = Tracer(clock=CountingClock())
        outputs_on, elapsed_on = serve(tracer)
        disabled_times.append(elapsed_off)
        enabled_times.append(elapsed_on)
        for request_id, output in outputs_off.items():
            if not np.array_equal(output.generated, outputs_on[request_id].generated):
                print(
                    f"perf smoke FAILED: request {request_id} generated different "
                    f"tokens with tracing enabled — instrumentation must be "
                    f"observation-only"
                )
                return 1

    # Span taxonomy: the trace must carry every lifecycle stage the
    # two-class run provably hits.
    required = (
        "request.queued",
        "request.admitted",
        "request.first_token",
        "request.preempted",
        "request.finished",
        "prefill_chunk",
        "decode_step",
        "cache.block_alloc",
    )
    for name in required:
        if not tracer.events_named(name):
            print(
                f"perf smoke FAILED: enabled tracing produced no {name!r} events "
                f"on the two-class preemption trace — an emit site went dark"
            )
            return 1

    # Disabled-path cost: the only residue of `tracer=None` is one
    # `is not None` branch per emit site.  Measure that branch, multiply by
    # the sites the enabled run proves are on the hot path, and compare to
    # the measured serve time.
    sink = None
    reps = 200_000
    start = time.perf_counter()
    for _ in range(reps):
        if sink is not None:  # pragma: no cover - never taken
            raise AssertionError
    guard_seconds = (time.perf_counter() - start) / reps
    guard_total = len(tracer.events) * guard_seconds
    disabled_overhead = guard_total / min(disabled_times)
    if disabled_overhead > MAX_DISABLED_TRACE_OVERHEAD:
        print(
            f"perf smoke FAILED: disabled tracing costs "
            f"{disabled_overhead:.2%} of the serve "
            f"({len(tracer.events)} guards x {guard_seconds * 1e9:.0f} ns, "
            f"required <= {MAX_DISABLED_TRACE_OVERHEAD:.0%}) — an emit site is "
            f"doing work outside its `tracer is not None` guard"
        )
        return 1

    # Export validation: the Chrome trace JSON must load back with balanced
    # spans and one process_name row per track.
    handle, path = tempfile.mkstemp(suffix=".json")
    os.close(handle)
    try:
        tracer.export_chrome_trace(path)
        with open(path) as trace_file:
            payload = json.load(trace_file)
    finally:
        os.unlink(path)
    rows = payload.get("traceEvents")
    if payload.get("displayTimeUnit") != "ms" or not isinstance(rows, list):
        print("perf smoke FAILED: exported trace is not Chrome trace-event JSON")
        return 1
    open_spans = {}
    metadata_pids = set()
    for row in rows:
        if not all(key in row for key in ("name", "ph", "pid", "tid")):
            print(f"perf smoke FAILED: exported trace row missing keys: {row}")
            return 1
        if row["ph"] == "M":
            metadata_pids.add(row["pid"])
        elif row["ph"] == "B":
            open_spans[row["pid"]] = open_spans.get(row["pid"], 0) + 1
        elif row["ph"] == "E":
            open_spans[row["pid"]] = open_spans.get(row["pid"], 0) - 1
            if open_spans[row["pid"]] < 0:
                print("perf smoke FAILED: exported trace closes a span it never opened")
                return 1
    if any(count != 0 for count in open_spans.values()):
        print("perf smoke FAILED: exported trace leaves spans open")
        return 1
    if {row["pid"] for row in rows} - metadata_pids:
        print("perf smoke FAILED: exported trace has events on unnamed tracks")
        return 1

    enabled_overhead = min(enabled_times) / min(disabled_times) - 1.0
    print(
        f"perf smoke ok (observability disabled-path {disabled_overhead:.3%}, "
        f"enabled {max(0.0, enabled_overhead):.1%} on {len(tracer.events)} events, "
        f"export valid)"
    )
    return 0


def check_serving_stress() -> int:
    """Randomized invariant sweep over the paged pool's op vocabulary."""
    from repro.serve import InvariantViolation, ServingStressHarness

    for seed in range(STRESS_SEEDS):
        try:
            ServingStressHarness(seed=seed).run(STRESS_OPS)
        except InvariantViolation as error:
            print(
                f"perf smoke FAILED: serving stress violated a pool invariant "
                f"(seed {seed}): {error}"
            )
            return 1
    print(
        f"perf smoke ok (serving stress clean over {STRESS_SEEDS} seeds x "
        f"{STRESS_OPS} ops)"
    )
    return 0


def check_fault_tolerance() -> int:
    """Deterministic chaos gate: kill replicas mid-trace, require parity."""
    from repro.serve import FaultInjector, GenerationConfig, ReplicaPool

    runner = _tiny_serving_runner()
    rng = np.random.default_rng(17)
    # Template-heavy prompts so recovered requests replay over prefix hits
    # on their failover replica (sticky routing keeps templates together).
    templates = [rng.integers(0, 64, size=10) for _ in range(2)]
    prompts = [
        np.concatenate([templates[i % 2], rng.integers(0, 64, size=2 + i % 3)])
        for i in range(8)
    ]

    def serve(injector):
        pool = ReplicaPool(
            runner,
            num_replicas=3,
            config=GenerationConfig(max_new_tokens=16),
            fault_injector=injector,
            max_batch_size=2,
            block_size=4,
            record_logits=False,
        )
        for prompt in prompts:
            pool.submit(prompt)
        outputs = {output.request_id: output for output in pool.run()}
        stats = pool.stats
        goodput = stats["generated_tokens"] / (
            stats["prefill_tokens"] + stats["generated_tokens"]
        )
        return outputs, pool, goodput

    outputs_clean, _, goodput_clean = serve(None)
    injector = FaultInjector(seed=0, kill_at={2: 0, 4: 1})
    outputs_chaos, chaos_pool, goodput_chaos = serve(injector)
    for request_id, output in outputs_clean.items():
        if not np.array_equal(output.generated, outputs_chaos[request_id].generated):
            print(
                f"perf smoke FAILED: request {request_id} generated different tokens "
                f"after replica-kill recovery — checkpoint/replay is not bit-exact"
            )
            return 1
    recoveries = chaos_pool.cluster_stats.recoveries
    if recoveries < 1:
        print(
            "perf smoke FAILED: the scripted kills triggered no recovery — "
            "the chaos schedule never exercised the replay path"
        )
        return 1
    ratio = goodput_chaos / goodput_clean
    if ratio < REQUIRED_FT_GOODPUT:
        print(
            f"perf smoke FAILED: chaos goodput fell to {ratio:.0%} of fault-free "
            f"(required >= {REQUIRED_FT_GOODPUT:.0%}) — recovery is recomputing "
            f"whole contexts instead of riding prefix hits"
        )
        return 1
    print(
        f"perf smoke ok (fault tolerance token-identical across {recoveries} "
        f"recoveries, goodput {ratio:.0%} of fault-free)"
    )
    return 0


def _tiny_tender_shard_runner():
    """A Tender-quantized 4-head random-weight runner (shardable at N=2/4)."""
    from repro.core import TenderConfig, TenderQuantizer
    from repro.models.weights import (
        AttentionWeights,
        BlockWeights,
        FeedForwardWeights,
        LayerNormWeights,
        ModelWeights,
    )
    from repro.nn import TransformerConfig

    config = TransformerConfig(
        vocab_size=64, d_model=32, num_heads=4, num_layers=2, d_ff=64, max_seq_len=128, seed=0
    )
    rng = np.random.default_rng(7)

    def dense(shape):
        return rng.normal(scale=0.25, size=shape)

    def norm():
        return LayerNormWeights(gain=np.ones(config.d_model), bias=np.zeros(config.d_model))

    blocks = [
        BlockWeights(
            ln_attn=norm(),
            attn=AttentionWeights(
                wq=dense((config.d_model, config.d_model)), bq=np.zeros(config.d_model),
                wk=dense((config.d_model, config.d_model)), bk=np.zeros(config.d_model),
                wv=dense((config.d_model, config.d_model)), bv=np.zeros(config.d_model),
                wo=dense((config.d_model, config.d_model)), bo=np.zeros(config.d_model),
            ),
            ln_ffn=norm(),
            ffn=FeedForwardWeights(
                w1=dense((config.d_model, config.d_ff)), b1=np.zeros(config.d_ff),
                w2=dense((config.d_ff, config.d_model)), b2=np.zeros(config.d_model),
            ),
        )
        for _ in range(config.num_layers)
    ]
    weights = ModelWeights(
        config=config,
        token_embedding=dense((config.vocab_size, config.d_model)),
        position_embedding=dense((config.max_seq_len, config.d_model)),
        blocks=blocks,
        ln_final=norm(),
        lm_head=dense((config.d_model, config.vocab_size)),
    )
    calibration = [rng.integers(0, 64, size=40) for _ in range(6)]
    return TenderQuantizer(
        TenderConfig(bits=8, num_groups=8, row_chunk_size=8), implicit=True
    ).quantize(weights, calibration)


def check_tensor_parallel() -> int:
    """Deterministic sharded-parity and collective-chaos gate."""
    from repro.serve import (
        CollectiveFaultInjector,
        CollectiveGroup,
        GenerationConfig,
        ReplicaPool,
        ShardedRunner,
    )

    solo = _tiny_tender_shard_runner()
    rng = np.random.default_rng(23)
    templates = [rng.integers(0, 64, size=10) for _ in range(2)]
    prompts = [
        np.concatenate([templates[i % 2], rng.integers(0, 64, size=2 + i % 3)])
        for i in range(8)
    ]

    # --- Parity under scripted transport faults (solo scheduler path) ---
    expected, _ = _serve(solo, prompts, prefix_cache=True, max_new_tokens=8)
    injector = CollectiveFaultInjector(
        corrupt_at={3: 1, 11: 0}, drop_at={5: 0}, delay_at={7: 1}, duplicate_at={9: 0}
    )
    group = CollectiveGroup(2, fault_injector=injector)
    sharded = ShardedRunner(solo, 2, group=group)
    actual, _ = _serve(sharded, prompts, prefix_cache=True, max_new_tokens=8)
    for request_id, output in expected.items():
        if not np.array_equal(output.generated, actual[request_id].generated):
            print(
                f"perf smoke FAILED: request {request_id} generated different tokens "
                f"on the 2-shard runner — column-parallel sharding is not bit-exact"
            )
            return 1
    if group.stats.corruption_caught < 1 or group.stats.retries < 1:
        print(
            "perf smoke FAILED: the scripted corrupted collective was never "
            "caught-and-retried — the checksum path is not being exercised"
        )
        return 1

    # --- Shard-kill recovery and goodput through a pool of shard groups ---
    def serve_pool(kill_injector):
        def factory(replica_id):
            group = CollectiveGroup(2, fault_injector=kill_injector)
            return ShardedRunner(solo, 2, group=group)

        pool = ReplicaPool(
            solo,
            num_replicas=2,
            runner_factory=factory,
            config=GenerationConfig(max_new_tokens=8),
            max_batch_size=2,
            block_size=4,
            record_logits=False,
        )
        for prompt in prompts:
            pool.submit(prompt)
        outputs = {output.request_id: output for output in pool.run()}
        stats = pool.stats
        goodput = stats["generated_tokens"] / (
            stats["prefill_tokens"] + stats["generated_tokens"]
        )
        return outputs, pool, goodput

    outputs_clean, _, goodput_clean = serve_pool(None)
    kill_injector = CollectiveFaultInjector(seed=0, kill_at={40: 1}, max_kills=1)
    outputs_chaos, chaos_pool, goodput_chaos = serve_pool(kill_injector)
    for request_id, output in outputs_clean.items():
        if not np.array_equal(output.generated, outputs_chaos[request_id].generated):
            print(
                f"perf smoke FAILED: request {request_id} generated different tokens "
                f"after shard-kill recovery — group replay is not bit-exact"
            )
            return 1
    recoveries = chaos_pool.cluster_stats.recoveries
    if recoveries < 1 or chaos_pool.cluster_stats.failures < 1:
        print(
            "perf smoke FAILED: the scripted shard kill triggered no group "
            "recovery — the shard-group fault unit never tripped"
        )
        return 1
    ratio = goodput_chaos / goodput_clean
    if ratio < REQUIRED_FT_GOODPUT:
        print(
            f"perf smoke FAILED: shard-kill goodput fell to {ratio:.0%} of "
            f"fault-free (required >= {REQUIRED_FT_GOODPUT:.0%})"
        )
        return 1
    print(
        f"perf smoke ok (tensor parallel bit-identical at 2 shards, "
        f"{group.stats.corruption_caught} corruptions caught, {recoveries} "
        f"shard-kill recoveries, goodput {ratio:.0%} of fault-free)"
    )
    return 0


def main() -> int:
    """Run every smoke gate; first failure wins."""
    return (
        check_fast_kernels()
        or check_serving_smoke()
        or check_speculative_smoke()
        or check_fused_attention()
        or check_preemption_smoke()
        or check_observability()
        or check_serving_stress()
        or check_fault_tolerance()
        or check_tensor_parallel()
    )


if __name__ == "__main__":
    sys.exit(main())
