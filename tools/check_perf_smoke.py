#!/usr/bin/env python
"""Perf smoke gate: the fast decode path must not regress below the reference.

Run from the repository root (tier-1 runs it via ``tests/tools``):

    PYTHONPATH=src python tools/check_perf_smoke.py

The check builds the shared synthetic decode workload from
``repro.core.perf`` (no model training, no checkpoint cache — the same
fixture ``benchmarks/bench_executor_kernels.py`` measures), verifies that
the fast Index-Buffer projection path is bit-identical to the reference
per-chunk loop, then times both.  The fast path has to beat the reference
by ``REQUIRED_SPEEDUP`` — a deliberately loose fraction of the ~10-20x the
kernels deliver on this workload (see ``BENCH_kernels.json``), so a future
PR that accidentally routes the hot path back through per-group gathers or
full-array overflow scans fails tier-1 instead of silently shipping the
regression, while machine noise alone cannot flake the gate.

Exit status 0 when clean; 1 with a one-line diagnosis otherwise.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import TenderConfig, TenderExecutor
from repro.core.perf import best_of, decode_projection_operands, synthetic_projection_site

#: The fast path must be at least this many times faster than the reference.
REQUIRED_SPEEDUP = 2.0
REPEATS = 25
ATTEMPTS = 4


def main() -> int:
    config = TenderConfig(bits=8, num_groups=8, row_chunk_size=32)
    params = synthetic_projection_site(config)
    fast = TenderExecutor(params, config, implicit=True, fast_kernels=True)
    reference = TenderExecutor(params, config, implicit=True, fast_kernels=False)
    x, positions, weight = decode_projection_operands()

    fast_out = fast.project("site", x, weight, None, positions=positions)
    reference_out = reference.project("site", x, weight, None, positions=positions)
    if not np.array_equal(fast_out, reference_out):
        print("perf smoke FAILED: fast projection is not bit-identical to the reference")
        return 1

    speedup = 0.0
    for _ in range(ATTEMPTS):
        reference_s = best_of(
            lambda: reference.project("site", x, weight, None, positions=positions), REPEATS
        )
        fast_s = best_of(
            lambda: fast.project("site", x, weight, None, positions=positions), REPEATS
        )
        speedup = max(speedup, reference_s / fast_s)
        if speedup >= 2 * REQUIRED_SPEEDUP:
            break
    if speedup < REQUIRED_SPEEDUP:
        print(
            f"perf smoke FAILED: fast decode path only {speedup:.2f}x the reference "
            f"(required >= {REQUIRED_SPEEDUP:.1f}x) — the fast kernels regressed"
        )
        return 1
    print(f"perf smoke ok (fast decode path {speedup:.1f}x over reference)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
