#!/usr/bin/env python
"""Docstring style checker: a pydocstyle/ruff-``D`` subset, no dependencies.

The container has neither ``ruff`` nor ``pydocstyle``, so this implements
the handful of ``D`` rules the serving API is held to, over the AST:

* D100  public module has a docstring
* D101  public class has a docstring
* D102  public method has a docstring (``_private`` and dunders exempt)
* D103  public function has a docstring
* D210  no leading/trailing whitespace on the summary line
* D400  the summary line ends with a period
* D419  docstring is non-empty

Scope defaults to the public serving API (``src/repro/serve``, which
includes the speculative-decoding subsystem ``serve/spec.py`` and the
fault-tolerant replica pool ``serve/cluster.py``), the GPU latency models
(``src/repro/gpu``), and the fast kernel layer
(``src/repro/core/kernels.py``); pass paths to override:

    python tools/check_docstrings.py [path ...]

Exit status 0 when clean; 1 with one ``file:line: rule message`` per
violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_SCOPE = ("src/repro/serve", "src/repro/gpu", "src/repro/core/kernels.py")


def is_public(name: str) -> bool:
    return not name.startswith("_")


def check_docstring(node, kind: str, name: str, errors: list, path: Path) -> None:
    docstring = ast.get_docstring(node, clean=False)
    line = getattr(node, "lineno", 1)
    if docstring is None:
        rule = {"module": "D100", "class": "D101", "method": "D102", "function": "D103"}[kind]
        errors.append(f"{path}:{line}: {rule} missing docstring in public {kind} {name}")
        return
    if not docstring.strip():
        errors.append(f"{path}:{line}: D419 docstring is empty in {kind} {name}")
        return
    summary = docstring.strip().splitlines()[0]
    first_raw = docstring.splitlines()[0]
    if first_raw != first_raw.strip() and first_raw.strip():
        errors.append(
            f"{path}:{line}: D210 whitespace around docstring summary in {kind} {name}"
        )
    if not summary.rstrip().endswith("."):
        errors.append(
            f"{path}:{line}: D400 summary line should end with a period in {kind} {name} "
            f"({summary[:50]!r})"
        )


def check_file(path: Path, errors: list) -> None:
    tree = ast.parse(path.read_text(), filename=str(path))
    module_name = path.stem
    if is_public(module_name) or module_name == "__init__":
        check_docstring(tree, "module", module_name, errors, path)
    # Top-level declarations only: methods are handled with their class, and
    # nested helpers are implementation detail.
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and is_public(node.name):
            check_docstring(node, "class", node.name, errors, path)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if item.name.startswith("_"):  # private and dunder methods
                        continue
                    check_docstring(item, "method", f"{node.name}.{item.name}", errors, path)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and is_public(node.name):
            check_docstring(node, "function", node.name, errors, path)


def main(argv) -> int:
    root = Path(__file__).resolve().parent.parent
    scopes = [Path(arg) for arg in argv[1:]] or [root / scope for scope in DEFAULT_SCOPE]
    errors: list = []
    checked = 0
    for scope in scopes:
        files = sorted(scope.rglob("*.py")) if scope.is_dir() else [scope]
        for file in files:
            checked += 1
            check_file(file, errors)
    for error in errors:
        print(error)
    if not errors:
        print(f"docstrings ok ({checked} files checked)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
