#!/usr/bin/env python
"""Docs link checker: keep docs/*.md and README cross-references from rotting.

Run from the repository root (tier-1 runs it via ``tests/docs``):

    python tools/check_doc_links.py

Checks, in order:

1. every relative markdown link in ``README.md`` and ``docs/*.md`` resolves
   to an existing file or directory (anchors are stripped; ``http(s)://``
   and ``mailto:`` targets are skipped — this repo's docs should not depend
   on the network);
2. ``docs/reproducing.md`` mentions every experiment module
   (``src/repro/experiments/table*.py`` / ``figure*.py``) — a new paper
   artifact cannot land without its row in the reproducing table;
3. ``docs/reproducing.md`` mentions every benchmark entry
   (``benchmarks/bench_*.py``) for the same reason;
4. ``docs/architecture.md`` mentions every serving-layer module
   (``src/repro/serve/*.py``) — a new subsystem (``cluster.py`` being the
   latest) cannot land without its architecture-doc section;
5. ``docs/architecture.md`` mentions every observability module
   (``src/repro/obs/*.py``) — tracing/metrics machinery follows the same
   rule as the serving layers it instruments.

Exit status 0 when clean; 1 with one line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def iter_markdown_files(root: Path):
    yield root / "README.md"
    yield from sorted((root / "docs").glob("*.md"))


def check_links(root: Path) -> list:
    errors = []
    for markdown in iter_markdown_files(root):
        if not markdown.exists():
            errors.append(f"{markdown.relative_to(root)}: file missing")
            continue
        for line_number, line in enumerate(markdown.read_text().splitlines(), 1):
            for target in LINK_PATTERN.findall(line):
                if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                    continue
                resolved = (markdown.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{markdown.relative_to(root)}:{line_number}: broken link -> {target}"
                    )
    return errors


def check_reproducing_coverage(root: Path) -> list:
    reproducing = root / "docs" / "reproducing.md"
    if not reproducing.exists():
        return ["docs/reproducing.md: file missing"]
    text = reproducing.read_text()
    errors = []
    experiment_modules = sorted(
        path
        for pattern in ("table*.py", "figure*.py")
        for path in (root / "src" / "repro" / "experiments").glob(pattern)
    )
    for module in experiment_modules:
        if module.name not in text:
            errors.append(f"docs/reproducing.md: experiment module {module.name} not mentioned")
    for bench in sorted((root / "benchmarks").glob("bench_*.py")):
        if bench.name not in text:
            errors.append(f"docs/reproducing.md: benchmark {bench.name} not mentioned")
    return errors


def check_architecture_coverage(root: Path) -> list:
    architecture = root / "docs" / "architecture.md"
    if not architecture.exists():
        return ["docs/architecture.md: file missing"]
    text = architecture.read_text()
    errors = []
    for module in sorted((root / "src" / "repro" / "serve").glob("*.py")):
        if module.name != "__init__.py" and module.name not in text:
            errors.append(
                f"docs/architecture.md: serve module {module.name} not mentioned"
            )
    for module in sorted((root / "src" / "repro" / "obs").glob("*.py")):
        if module.name != "__init__.py" and module.name not in text:
            errors.append(
                f"docs/architecture.md: obs module {module.name} not mentioned"
            )
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    errors = (
        check_links(root)
        + check_reproducing_coverage(root)
        + check_architecture_coverage(root)
    )
    for error in errors:
        print(error)
    if not errors:
        print(f"doc links ok ({sum(1 for _ in iter_markdown_files(root))} files checked)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
