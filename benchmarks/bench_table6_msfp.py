"""Benchmark: regenerate Table VI (Tender INT4 vs MSFP block floating point)."""

from benchmarks.conftest import run_once
from repro.experiments import render_table6, run_table6


def test_table6_msfp(benchmark, render):
    rows = run_once(benchmark, run_table6)
    render(render_table6(rows))
    by_scheme = {row.scheme: row.perplexities for row in rows}
    for model in by_scheme["FP16"]:
        # Paper ordering: MSFP12 >> MSFP12-OL >> Tender-INT4 (lower is better).
        assert by_scheme["MSFP12"][model] > by_scheme["MSFP12-OL"][model]
        assert by_scheme["MSFP12-OL"][model] > by_scheme["Tender-INT4"][model]
