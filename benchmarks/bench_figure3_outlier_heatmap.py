"""Benchmark: regenerate Figure 3 (channel-wise outliers across layers)."""

from benchmarks.conftest import run_once
from repro.experiments import render_figure3, run_figure3


def test_figure3_outlier_heatmap(benchmark, render):
    result = run_once(benchmark, run_figure3)
    render(render_figure3(result))
    # The same channels must be hot in every layer and match the injected ones.
    assert result.overlap >= 0.75
