"""Shared benchmark configuration.

Each benchmark file regenerates one table or figure of the paper.  The
experiment functions are deterministic but not cheap (they evaluate several
quantization schemes on trained checkpoints), so every benchmark runs a single
measured round and prints the rendered table so the output can be compared
against the paper (and against EXPERIMENTS.md).

Scale profiles (see ``repro.experiments.report``):

* default under ``pytest benchmarks`` — **smoke mode**: the autouse fixture
  below exports ``REPRO_SMOKE=1`` for benchmark tests only, shrinking every
  experiment (one model, two eval windows, reduced sweeps) so each script
  finishes in a few seconds and the whole directory rides along with the
  tier-1 test run;
* ``REPRO_FULL_EVAL=1`` — the full model list used in the paper (overrides
  smoke mode).
"""

from __future__ import annotations

import pytest

from repro.experiments.report import full_evaluation_enabled


@pytest.fixture(autouse=True)
def _smoke_profile(monkeypatch):
    """Run benchmarks in smoke mode unless a full evaluation was requested.

    Applied per benchmark test via monkeypatch so the environment of regular
    tests (which exercise the default quick profile) is never touched.
    """
    if not full_evaluation_enabled():
        monkeypatch.setenv("REPRO_SMOKE", "1")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def render(capsys):
    """Return a helper that prints a rendered table outside capture."""

    def _render(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _render
