"""Shared benchmark configuration.

Each benchmark file regenerates one table or figure of the paper.  The
experiment functions are deterministic but not cheap (they evaluate several
quantization schemes on trained checkpoints), so every benchmark runs a single
measured round and prints the rendered table so the output can be compared
against the paper (and against EXPERIMENTS.md).

Set ``REPRO_FULL_EVAL=1`` to evaluate the full model list used in the paper
instead of the quick two-model subset.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def render(capsys):
    """Return a helper that prints a rendered table outside capture."""

    def _render(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _render
