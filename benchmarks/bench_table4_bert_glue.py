"""Benchmark: regenerate Table IV (BERT-Large / GLUE accuracy)."""

from benchmarks.conftest import run_once
from repro.experiments import render_table4, run_table4
from repro.experiments.report import current_profile, full_evaluation_enabled


def test_table4_bert_glue(benchmark, render):
    if full_evaluation_enabled():
        tasks = None
    elif current_profile().smoke:
        tasks = ["SST-2"]
    else:
        tasks = ["SST-2", "QNLI"]
    cells = run_once(benchmark, run_table4, tasks=tasks)
    render(render_table4(cells))
    index = {(c.precision, c.scheme, c.task): c.accuracy for c in cells}
    used_tasks = sorted({c.task for c in cells})
    for task in used_tasks:
        base = index[("FP32", "Base", task)]
        assert base > 60.0                                    # clearly above chance
        assert index[("INT8", "Tender", task)] > base - 8.0   # Tender INT8 tracks FP32
