"""Benchmark: regenerate Figure 12 (GPU latency and MSE of Tender SW)."""

from benchmarks.conftest import run_once
from repro.experiments import render_figure12, run_figure12


def test_figure12_gpu_latency_mse(benchmark, render):
    rows = run_once(benchmark, run_figure12)
    render(render_figure12(rows))
    by_key = {(r.device, r.scheme): r for r in rows}
    devices = sorted({r.device for r in rows})
    assert devices  # at least one setup even in smoke mode
    for device in devices:
        fp16 = by_key[(device, "FP16")]
        tender = by_key[(device, "Tender SW")]
        per_tensor = by_key[(device, "INT8 (per-tensor)")]
        per_channel = by_key[(device, "INT8 (per-channel)")]
        # Latency shape: per-tensor fastest, Tender SW at or slightly below FP16,
        # per-channel at or above FP16.
        assert per_tensor.normalized_latency < tender.normalized_latency <= 1.05
        assert per_channel.normalized_latency >= 0.99
        # MSE shape: Tender SW tracks per-channel accuracy, far below per-tensor.
        assert tender.mse < per_tensor.mse
        assert fp16.mse == 0.0
