"""Benchmark: regenerate Figure 10 (speedup over ANT across accelerators)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import render_figure10, run_figure10


def test_figure10_speedup(benchmark, render):
    rows = run_once(benchmark, run_figure10)
    render(render_figure10(rows))
    geomean = rows[-1].speedups
    # Paper: Tender 2.63x, OliVe 1.78x, OLAccel 1.43x over ANT (geomean).
    assert geomean["Tender"] == pytest.approx(2.63, rel=0.25)
    assert geomean["OliVe"] == pytest.approx(1.78, rel=0.25)
    assert geomean["OLAccel"] == pytest.approx(1.43, rel=0.25)
    assert geomean["Tender"] > geomean["OliVe"] > geomean["OLAccel"] > geomean["ANT"]
