"""Benchmark: regenerate Table II (INT8/INT4 PTQ perplexity vs prior schemes)."""

from benchmarks.conftest import run_once
from repro.experiments import render_table2, run_table2


def test_table2_ptq_perplexity(benchmark, render):
    cells = run_once(benchmark, run_table2)
    render(render_table2(cells))
    index = {(c.precision, c.scheme, c.model, c.dataset): c.perplexity for c in cells}
    models = sorted({c.model for c in cells})
    for model in models:
        base = index[("FP16", "Base", model, "wiki")]
        tender8 = index[("INT8", "Tender", model, "wiki")]
        tender4 = index[("INT4", "Tender", model, "wiki")]
        ant4 = index[("INT4", "ANT", model, "wiki")]
        assert tender8 < base * 1.10          # INT8 Tender tracks FP16
        assert tender4 < ant4                 # INT4 Tender beats ANT
