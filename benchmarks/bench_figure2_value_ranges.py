"""Benchmark: regenerate Figure 2 (activation vs weight value ranges)."""

from benchmarks.conftest import run_once
from repro.experiments import render_figure2, run_figure2


def test_figure2_value_ranges(benchmark, render):
    summaries = run_once(benchmark, run_figure2)
    render(render_figure2(summaries))
    activations = [s for s in summaries if s.kind == "activation"]
    weights = [s for s in summaries if s.kind == "weight"]
    # The paper's point: activations have far stronger channel outliers than weights.
    assert min(a.outlier_ratio for a in activations) > max(w.outlier_ratio for w in weights)
