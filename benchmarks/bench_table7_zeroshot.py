"""Benchmark: regenerate Table VII (zero-shot accuracy: SMX4 / MXFP4 / Tender)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import render_table7, run_table7
from repro.experiments.report import full_evaluation_enabled


def test_table7_zeroshot(benchmark, render):
    tasks = None if full_evaluation_enabled() else ["Hellaswag", "ARC easy", "Lambada", "Winogrande"]
    cells = run_once(benchmark, run_table7, models=("opt-6.7b-sim",), tasks=tasks)
    render(render_table7(cells))
    mean_by_scheme = {}
    for scheme in ("Base", "SMX4", "MXFP4", "Tender"):
        values = [c.accuracy for c in cells if c.scheme == scheme]
        mean_by_scheme[scheme] = float(np.mean(values))
    # Paper ordering on average: FP >= Tender > MXFP4 > SMX4 (SMX4 near chance).
    assert mean_by_scheme["Tender"] > mean_by_scheme["MXFP4"]
    assert mean_by_scheme["Tender"] > mean_by_scheme["SMX4"]
    assert mean_by_scheme["Base"] >= mean_by_scheme["Tender"] - 5.0
