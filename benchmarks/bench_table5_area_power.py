"""Benchmark: regenerate Table V (area and power of the Tender accelerator)."""

import pytest

from benchmarks.conftest import run_once
from repro.accelerator import total_area_power
from repro.experiments import render_table5, run_table5


def test_table5_area_power(benchmark, render):
    rows = run_once(benchmark, run_table5)
    render(render_table5(rows))
    totals = total_area_power(rows)
    assert totals["area_mm2"] == pytest.approx(3.98, abs=0.02)
    assert totals["power_w"] == pytest.approx(1.60, abs=0.02)
