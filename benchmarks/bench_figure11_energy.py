"""Benchmark: regenerate Figure 11 (energy efficiency across accelerators)."""

from benchmarks.conftest import run_once
from repro.experiments import render_figure11, run_figure11


def test_figure11_energy_efficiency(benchmark, render):
    rows = run_once(benchmark, run_figure11)
    render(render_figure11(rows))
    geomean = rows[-1].efficiency
    # Paper: Tender is 1.84x / 1.53x / 1.24x more energy efficient than ANT / OLAccel / OliVe.
    assert geomean["Tender"] > geomean["OliVe"] > geomean["OLAccel"] > 1.0
    assert 1.5 < geomean["Tender"] < 2.6
