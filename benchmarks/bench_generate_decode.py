"""Benchmark: batched KV-cached generation, vectorized attention, scheduling.

Nine measurements ride in one benchmark round:

1. **End-to-end decode throughput** — the batched ``generate()`` loop over the
   FP baseline, Tender with implicit and explicit requantization, and two
   registry baselines, alongside the analytical per-step GPU latency of the
   same decode workload (``repro.gpu.decode_step_latencies``).
2. **Vectorized attention speedup** — the batched Tender activation-activation
   kernel against the reference per-batch/per-head loop on decode-shaped
   operands, which must be at least 5x faster while remaining numerically
   identical.
3. **Continuous vs static batching** — the same Poisson arrival trace served
   by the continuous-batching ``Scheduler`` and by classic static (gang)
   batching.  The deterministic efficiency metric is *generated tokens per
   model forward pass*; the static baseline is credited with one **batched**
   prefill per gang (better than the gang policy actually gets), and the
   continuous scheduler must still deliver >= 1.5x.  The analytic expectation
   from ``repro.gpu.ContinuousBatchWorkload`` is the harmonic number of the
   batch size (H(4) ~ 2.08 under saturation, memoryless lengths).
4. **Prefix-cached serving** — the same scheduler with ``prefix_cache=True``
   on a shared-template trace (N requests over K prompt templates, 80%
   prefix overlap) against the cache-off baseline: generated tokens must be
   bit-identical (Tender's integer pipeline) while serving throughput
   reaches at least 2x, and a disjoint-prompt trace must show no
   regression.  ``repro.gpu.PrefixCacheWorkload`` provides the analytic
   hit-rate → throughput expectation alongside the measurement.
5. **Speculative decoding** — the scheduler with
   ``speculation=SpecConfig(PromptLookupDraft())`` on a repetition-heavy
   *extractive* trace: each prompt embeds the model's own greedy
   continuation (the summarization/copy serving pattern), built two-pass
   and ranked by a cheap solo probe so the trace consists of requests that
   genuinely repeat.  Decode-phase tokens/sec (time inside
   ``decode_step``/``verify`` only — prefill is identical either way) must
   reach at least 1.5x the non-speculative baseline with bit-identical
   tokens, and a disjoint non-repetitive control must show no meaningful
   regression (the drafter goes quiet and the scheduler degrades to plain
   decode).  ``repro.gpu.SpeculativeWorkload`` provides the analytic
   accept-rate → speedup expectation alongside the measurement.

6. **Priority preemption** — a bursty two-class trace (background Poisson
   stream of long generations, urgent short requests arriving in bursts
   after the batch saturates) served FIFO vs with priorities + preemption.
   The deterministic gates: every request's tokens stay bit-identical
   (preempted victims replay, never re-sample), high-class p99 TTFT (in
   scheduler ticks) improves >= 1.5x, and aggregate throughput — generated
   tokens per forwarded token row, the unit GPU time follows — stays within
   5% of FIFO.  ``repro.gpu.PreemptionWorkload`` provides the
   analytic recompute-vs-wait expectation alongside the measurement.

7. **Observability** — the same two-class trace served untraced
   (``tracer=None``) and under a wall-clocked ``repro.obs.Tracer``.  The
   gates: generated tokens stay bit-identical (tracing is
   observation-only), enabled tracing costs at most 5% of the untraced
   serve, and the disabled path's residue — one ``is not None`` branch
   per emit site, priced by measuring that branch — stays under 1%.
   ``repro.gpu.ObservabilityOverheadWorkload`` provides the analytic
   per-step-tax expectation alongside the measurement.

8. **Fault tolerance** — a Poisson arrival trace over a 3-replica
   ``repro.serve.cluster.ReplicaPool`` (sticky-template routing), served
   fault-free and under seeded mid-trace replica kills.  The deterministic
   gates: every request's tokens stay bit-identical across the chaos run
   (crashed requests are checkpointed and replayed, never re-sampled), at
   least one recovery fires, and chaos goodput — generated tokens per
   forwarded token row — stays within 80% of fault-free, because recovery
   replays ride prefix-cache hits instead of recomputing whole contexts.
   ``repro.gpu.FaultToleranceWorkload`` provides the analytic
   recompute-cost-vs-failure-rate expectation alongside the measurement.

9. **Tensor parallelism** — the same template-heavy trace served by a pool
   whose replicas are 2-shard ``repro.serve.ShardedRunner`` groups meeting
   at checksummed ``CollectiveGroup`` all-gathers, fault-free and under a
   scripted collective corruption plus a scripted shard kill.  The
   deterministic gates: sharded tokens stay bit-identical to the solo pool
   (column-parallel sharding never splits the channel axis Tender's
   calibration tables index), the corrupted message is caught by its
   checksum and retried, the dead shard fails its whole group through the
   checkpoint/replay recovery (at least one recovery, zero degradations),
   and chaos goodput stays within 80% of fault-free.
   ``repro.gpu.TensorParallelWorkload`` provides the analytic
   communication-inclusive speedup/goodput curve over shard counts.

The prefix-cache, speculative, preemption, observability,
fault-tolerance, and tensor-parallel results land in ``BENCH_serving.json`` when
``REPRO_WRITE_BENCH=1`` (or a full evaluation) asks for a fresh record.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

import numpy as np

from benchmarks.conftest import run_once
from repro.baselines import SchemeRequest, build_runner
from repro.core import TenderConfig, TenderExecutor, TenderQuantizer
from repro.data import calibration_samples, load_corpus
from repro.experiments.report import format_table, full_evaluation_enabled
from repro.gpu import (
    ContinuousBatchWorkload,
    DecodeWorkload,
    FaultToleranceWorkload,
    PreemptionWorkload,
    PrefixCacheWorkload,
    SpeculativeWorkload,
    TensorParallelWorkload,
    decode_step_latencies,
    fault_tolerance_goodput,
    tensor_parallel_speedup,
)
from repro.models import TransformerRunner, get_language_model
from repro.models.zoo import get_zoo_entry
from repro.serve import (
    CollectiveFaultInjector,
    CollectiveGroup,
    FaultInjector,
    GenerationConfig,
    GenerationEngine,
    PromptLookupDraft,
    ReplicaPool,
    Scheduler,
    ShardedRunner,
    SpecConfig,
)
from repro.serve.engine import GenerationResult

MODEL_NAME = "opt-6.7b-sim"
SERVING_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


@dataclass
class DecodeBenchRow:
    scheme: str
    wall_ms_per_token: float
    modeled_ms_per_step: float
    tokens: int


def _engines_and_tokens() -> tuple:
    weights = get_language_model(MODEL_NAME)
    corpus_train, _ = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    calibration = calibration_samples(corpus_train, seq_len=48, num_samples=4, seed=7)

    tender_config = TenderConfig(bits=8, num_groups=8, row_chunk_size=32)
    implicit = TenderQuantizer(tender_config, implicit=True).quantize(weights, calibration)
    explicit = TenderQuantizer(tender_config, implicit=False).quantize(weights, calibration)
    request = SchemeRequest(weights=weights, calibration=calibration, bits=8)
    engines = {
        "FP16": GenerationEngine(TransformerRunner(weights)),
        "Tender (implicit)": GenerationEngine(implicit),
        "Tender (explicit)": GenerationEngine(explicit),
        "INT8 per-tensor": GenerationEngine(build_runner("per-tensor", request)),
        "INT8 per-row": GenerationEngine(build_runner("per-row", request)),
    }
    return engines, corpus_train


def run_generate_bench() -> List[DecodeBenchRow]:
    """Wall-clock decode throughput per scheme plus the modeled GPU latency."""
    max_new = 24 if full_evaluation_enabled() else 8
    engines, corpus_train = _engines_and_tokens()
    entry = get_zoo_entry(MODEL_NAME)
    prompts = [corpus_train[:12], corpus_train[20:25], corpus_train[40:49], corpus_train[60:67]]
    workload = DecodeWorkload(
        batch=len(prompts),
        context=int(max(len(p) for p in prompts)) + max_new,
        d_model=entry.paper_d_model,
        d_ff=entry.paper_d_ff,
        num_heads=entry.paper_num_heads,
        num_layers=entry.paper_num_layers,
    )
    modeled = decode_step_latencies(workload, "rtx3090")
    modeled_by_scheme = {
        "FP16": modeled["FP16"],
        "Tender (implicit)": modeled["Tender SW"],
        "Tender (explicit)": modeled["Tender SW"],
        "INT8 per-tensor": modeled["INT8 (per-tensor)"],
        "INT8 per-row": modeled["INT8 (per-row)"],
    }

    rows: List[DecodeBenchRow] = []
    config = GenerationConfig(max_new_tokens=max_new)
    for scheme, engine in engines.items():
        start = time.perf_counter()
        result: GenerationResult = engine.generate(prompts, config)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        tokens = int(sum(len(g) for g in result.generated))
        assert tokens == len(prompts) * result.num_steps
        vocab = engine.runner.config.vocab_size
        assert all(0 <= token < vocab for seq in result.generated for token in seq)
        rows.append(
            DecodeBenchRow(
                scheme=scheme,
                wall_ms_per_token=elapsed_ms / tokens,
                modeled_ms_per_step=modeled_by_scheme[scheme].milliseconds,
                tokens=tokens,
            )
        )
    return rows


def run_vectorization_bench() -> dict:
    """Vectorized vs reference-loop Tender attention on decode-shaped operands."""
    repeats = 7 if full_evaluation_enabled() else 5
    config = TenderConfig(bits=8, num_groups=8, quantize_attention=True)
    executor = TenderExecutor({}, config)
    rng = np.random.default_rng(17)
    # One decode step's score matmul: 32 requests x 8 heads, context length 48.
    # 256 head-pairs keep the reference loop's Python overhead dominant, so
    # the >= 5x assertion below holds with a wide margin even on a noisy box.
    queries = rng.normal(size=(32, 8, 1, 16))
    keys_t = rng.normal(size=(32, 8, 16, 48))

    # Warm-up (also the numerical-identity check), then min-of-N timings.
    # A transient load spike on a shared machine can skew one sample, so the
    # measurement is retried a couple of times and the best ratio kept —
    # contention has to persist across attempts to flake the tier-1 gate.
    loop_result = executor._attention_matmul_loop(queries, keys_t)
    vectorized_result = executor._attention_matmul_vectorized(queries, keys_t)

    loop_s = vectorized_s = None
    for _ in range(3):
        attempt_loop = min(
            _timed(executor._attention_matmul_loop, queries, keys_t) for _ in range(repeats)
        )
        attempt_vec = min(
            _timed(executor._attention_matmul_vectorized, queries, keys_t) for _ in range(repeats)
        )
        if loop_s is None or attempt_loop / attempt_vec > loop_s / vectorized_s:
            loop_s, vectorized_s = attempt_loop, attempt_vec
        if loop_s / vectorized_s >= 8.0:
            break
    return {
        "identical": bool(np.array_equal(loop_result, vectorized_result)),
        "loop_ms": loop_s * 1e3,
        "vectorized_ms": vectorized_s * 1e3,
        "speedup": loop_s / vectorized_s,
    }


def _timed(function, *args) -> float:
    start = time.perf_counter()
    function(*args)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# Continuous vs static batching under a Poisson arrival trace
# ----------------------------------------------------------------------
MAX_BATCH = 4


@dataclass
class TraceRequest:
    prompt: "np.ndarray"
    budget: int
    arrival: float


def build_poisson_trace(tokens, num_requests: int, long_every: int, long_budget: int, short_budget: int, seed: int) -> List[TraceRequest]:
    """A seeded arrival trace: Poisson arrivals, mostly-short skewed lengths.

    Every ``long_every``-th request is a long generation — the realistic
    skew (chat traffic is dominated by short turns with a heavy tail) that
    makes gang scheduling pay: one long member pins its whole gang's slots.
    """
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(scale=1.5, size=num_requests))
    requests = []
    for index in range(num_requests):
        start = (index * 13) % 400
        prompt = tokens[start : start + 4 + (index % 7)]
        budget = long_budget if index % long_every == 0 else short_budget
        requests.append(TraceRequest(prompt=prompt, budget=budget, arrival=float(arrivals[index])))
    return requests


def _serve_trace(runner, trace: List[TraceRequest], policy: str) -> tuple:
    """Run the trace through one scheduling policy; return (outputs, stats, seconds)."""
    scheduler = Scheduler(
        runner,
        GenerationConfig(max_new_tokens=max(r.budget for r in trace)),
        max_batch_size=MAX_BATCH,
        policy=policy,
        record_logits=False,
    )
    for request in trace:
        scheduler.submit(request.prompt, max_new_tokens=request.budget, arrival_time=request.arrival)
    start = time.perf_counter()
    outputs = scheduler.run()
    return outputs, scheduler.stats, time.perf_counter() - start


def _classic_static_iterations(trace: List[TraceRequest]) -> int:
    """Forward passes of idealized static batching on the same trace.

    Requests form gangs of ``MAX_BATCH`` in arrival order; each gang costs
    one *batched* prefill plus ``max(budget) - 1`` decode passes (the first
    token of every request comes from the prefill logits).  This credits
    static batching with a batched prefill the gang policy does not even
    get, so the measured speedup is a lower bound.
    """
    ordered = sorted(trace, key=lambda r: r.arrival)
    total = 0
    for start in range(0, len(ordered), MAX_BATCH):
        gang = ordered[start : start + MAX_BATCH]
        total += 1 + max(r.budget for r in gang) - 1
    return total


def run_continuous_batching_bench() -> dict:
    """Token throughput of continuous vs static batching on one trace."""
    if full_evaluation_enabled():
        num_requests, long_budget, short_budget = 48, 56, 3
    else:
        num_requests, long_budget, short_budget = 24, 40, 2
    weights = get_language_model(MODEL_NAME)
    runner = TransformerRunner(weights)
    corpus_train, _ = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    trace = build_poisson_trace(
        corpus_train, num_requests, long_every=6,
        long_budget=long_budget, short_budget=short_budget, seed=23,
    )

    continuous_outputs, continuous_stats, continuous_s = _serve_trace(runner, trace, "continuous")
    gang_outputs, gang_stats, gang_s = _serve_trace(runner, trace, "gang")

    # Scheduling must never change what a request generates.
    by_id_continuous = {o.request_id: o for o in continuous_outputs}
    for output in gang_outputs:
        assert np.array_equal(output.generated, by_id_continuous[output.request_id].generated)

    tokens = continuous_stats.generated_tokens
    assert tokens == gang_stats.generated_tokens == sum(r.budget for r in trace)
    static_iterations = _classic_static_iterations(trace)
    entry = get_zoo_entry(MODEL_NAME)
    analytic = ContinuousBatchWorkload(
        max_batch=MAX_BATCH,
        mean_new_tokens=tokens / num_requests,
        context=64,
        d_model=entry.paper_d_model,
        d_ff=entry.paper_d_ff,
        num_heads=entry.paper_num_heads,
        num_layers=entry.paper_num_layers,
    )
    return {
        "num_requests": num_requests,
        "tokens": tokens,
        "continuous_iterations": continuous_stats.total_iterations,
        "gang_iterations": gang_stats.total_iterations,
        "static_iterations": static_iterations,
        "continuous_tokens_per_iteration": tokens / continuous_stats.total_iterations,
        "static_tokens_per_iteration": tokens / static_iterations,
        "speedup_vs_static": static_iterations / continuous_stats.total_iterations,
        "analytic_saturated_speedup": analytic.speedup_over_static(),
        "continuous_wall_s": continuous_s,
        "gang_wall_s": gang_s,
        "peak_active": continuous_stats.peak_active,
    }


# ----------------------------------------------------------------------
# Prefix-cached serving: shared-template trace vs cache-off baseline
# ----------------------------------------------------------------------
#: Shared-template trace shape: 112 shared + 28 unique tokens = 80% overlap.
PREFIX_LEN = 112
SUFFIX_LEN = 28
PREFIX_TEMPLATES = 3
PREFIX_REQUESTS = 30
PREFIX_MAX_NEW = 3


def build_shared_prefix_trace(tokens, num_requests: int, num_templates: int) -> List[np.ndarray]:
    """N prompts drawn from K templates: shared long prefix, unique suffix.

    The few-shot / system-prompt serving pattern: ``PREFIX_LEN`` of every
    prompt's ``PREFIX_LEN + SUFFIX_LEN`` tokens are one of ``num_templates``
    shared templates (80% prefix overlap), the rest is per-request.
    """
    templates = [tokens[i * 150 : i * 150 + PREFIX_LEN] for i in range(num_templates)]
    return [
        np.concatenate(
            [templates[i % num_templates], tokens[600 + i * 31 : 600 + i * 31 + SUFFIX_LEN]]
        )
        for i in range(num_requests)
    ]


def build_disjoint_trace(tokens, num_requests: int) -> List[np.ndarray]:
    """Fully disjoint prompts of the same shape (the no-hit control trace)."""
    length = PREFIX_LEN + SUFFIX_LEN
    return [tokens[i * (length + 3) : i * (length + 3) + length] for i in range(num_requests)]


def _serve_prefix_trace(runner, prompts: List[np.ndarray], prefix_cache: bool) -> tuple:
    """Serve the trace once; return (outputs-by-id, stats, wall seconds)."""
    scheduler = Scheduler(
        runner,
        GenerationConfig(max_new_tokens=PREFIX_MAX_NEW),
        max_batch_size=4,
        block_size=16,
        prefix_cache=prefix_cache,
        record_logits=False,
    )
    for index, prompt in enumerate(prompts):
        scheduler.submit(prompt, arrival_time=float(index) * 0.5)
    start = time.perf_counter()
    outputs = {output.request_id: output for output in scheduler.run()}
    return outputs, scheduler.stats, time.perf_counter() - start


def _measure_trace(runner, prompts: List[np.ndarray], attempts: int = 3) -> dict:
    """Cache-on vs cache-off over one trace, best throughput ratio kept.

    Output parity is asserted on every attempt; the wall-clock ratio keeps
    the best of ``attempts`` so transient machine load cannot flake the
    tier-1 gate (the serving runs themselves are deterministic).
    """
    best: dict = {}
    for _ in range(attempts):
        outputs_off, stats_off, seconds_off = _serve_prefix_trace(runner, prompts, False)
        outputs_on, stats_on, seconds_on = _serve_prefix_trace(runner, prompts, True)
        # Caching must never change what a request generates.
        for request_id, output in outputs_off.items():
            assert np.array_equal(output.generated, outputs_on[request_id].generated)
        tokens = stats_on.generated_tokens
        assert tokens == stats_off.generated_tokens
        speedup = seconds_off / seconds_on
        if not best or speedup > best["speedup"]:
            best = {
                "num_requests": len(prompts),
                "tokens": tokens,
                "prefill_tokens_off": stats_off.prefill_tokens,
                "prefill_tokens_on": stats_on.prefill_tokens,
                "prefix_hit_rate": stats_on.prefix_hit_rate(),
                "tokens_per_s_off": tokens / seconds_off,
                "tokens_per_s_on": tokens / seconds_on,
                "speedup": speedup,
            }
    return best


def run_prefix_cache_bench() -> dict:
    """Prefix-cached serving throughput on shared vs disjoint prompt traces."""
    weights = get_language_model(MODEL_NAME)
    corpus_train, _ = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    calibration = calibration_samples(corpus_train, seq_len=48, num_samples=4, seed=7)
    runner = TenderQuantizer(
        TenderConfig(bits=8, num_groups=8, row_chunk_size=32), implicit=True
    ).quantize(weights, calibration)

    shared_prompts = build_shared_prefix_trace(corpus_train, PREFIX_REQUESTS, PREFIX_TEMPLATES)
    disjoint_prompts = build_disjoint_trace(corpus_train, 8)
    shared = _measure_trace(runner, shared_prompts)
    disjoint = _measure_trace(runner, disjoint_prompts)

    entry = get_zoo_entry(MODEL_NAME)
    analytic = PrefixCacheWorkload(
        prompt_tokens=PREFIX_LEN + SUFFIX_LEN,
        mean_new_tokens=PREFIX_MAX_NEW,
        hit_rate=PREFIX_LEN / (PREFIX_LEN + SUFFIX_LEN),
        d_model=entry.paper_d_model,
        d_ff=entry.paper_d_ff,
        num_heads=entry.paper_num_heads,
        num_layers=entry.paper_num_layers,
        batch=4,
    )
    return {
        "overlap": PREFIX_LEN / (PREFIX_LEN + SUFFIX_LEN),
        "shared": shared,
        "disjoint": disjoint,
        "analytic_speedup_tender_sw": analytic.speedup_over_cold("rtx3090")["Tender SW"],
    }


# ----------------------------------------------------------------------
# Speculative decoding: repetition-heavy extractive trace vs plain decode
# ----------------------------------------------------------------------
SPEC_REQUESTS = 8
SPEC_MAX_DRAFT = 12


class _DecodeClock:
    """Accumulates wall time spent inside ``decode_step`` / ``verify``.

    The speculative gate is on *decode* tokens/sec: prefill work is
    identical with speculation on or off, so timing the whole serve would
    only dilute the effect under measurement.
    """

    def __init__(self, runner: TransformerRunner) -> None:
        self.runner = runner
        self.seconds = 0.0

    def _timed(self, function):
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return function(*args, **kwargs)
            finally:
                self.seconds += time.perf_counter() - start

        return wrapper

    def __enter__(self) -> "_DecodeClock":
        self._original = (self.runner.decode_step, self.runner.verify)
        self.runner.decode_step = self._timed(self._original[0])
        self.runner.verify = self._timed(self._original[1])
        return self

    def __exit__(self, *exc) -> None:
        self.runner.decode_step, self.runner.verify = self._original


def _spec_config() -> SpecConfig:
    return SpecConfig(drafter=PromptLookupDraft(), max_draft=SPEC_MAX_DRAFT)


def build_extractive_trace(runner, tokens, pool: int, keep: int) -> List[np.ndarray]:
    """Two-pass extractive prompts, ranked by how well they actually draft.

    Pass one embeds each candidate seed's own greedy continuation in its
    prompt — the summarization/copy pattern where the generation echoes
    prompt content.  Whether the model then *keeps* echoing (stays in its
    repetition attractor) varies per seed, so a cheap solo probe ranks the
    candidates by speculative decode forwards and the trace keeps the
    ``keep`` most repetitive requests.  Fully deterministic: fixed seeds,
    greedy decoding, forward counts (not wall time) as the ranking key.
    """
    seeds = [tokens[i * 17 : i * 17 + 16] for i in range(pool)]
    warm = GenerationEngine(runner).generate(seeds, GenerationConfig(max_new_tokens=56))
    prompts = [
        np.concatenate([seed, body]) for seed, body in zip(seeds, warm.generated)
    ]

    def probe(prompt) -> int:
        scheduler = Scheduler(
            runner,
            GenerationConfig(max_new_tokens=24),
            max_batch_size=1,
            record_logits=False,
            speculation=_spec_config(),
        )
        scheduler.submit(prompt)
        scheduler.run()
        return scheduler.stats.decode_iterations

    ranked = sorted((probe(prompt), index) for index, prompt in enumerate(prompts))
    return [prompts[index] for _, index in ranked[:keep]]


def _serve_spec_trace(runner, prompts: List[np.ndarray], speculation, max_new: int) -> tuple:
    """Serve the trace once; return (outputs-by-id, stats, decode seconds)."""
    scheduler = Scheduler(
        runner,
        GenerationConfig(max_new_tokens=max_new),
        max_batch_size=4,
        record_logits=False,
        speculation=speculation,
    )
    for prompt in prompts:
        scheduler.submit(prompt)
    with _DecodeClock(runner) as clock:
        outputs = {output.request_id: output for output in scheduler.run()}
    return outputs, scheduler.stats, clock.seconds


def _measure_spec_trace(runner, prompts: List[np.ndarray], max_new: int, attempts: int = 3) -> dict:
    """Speculation on vs off over one trace, best decode-throughput ratio kept.

    Output parity is asserted on every attempt; the decode-phase wall ratio
    keeps the best of ``attempts`` so transient machine load cannot flake
    the tier-1 gate (the serving runs themselves are deterministic).
    """
    best: dict = {}
    for _ in range(attempts):
        outputs_off, stats_off, seconds_off = _serve_spec_trace(runner, prompts, None, max_new)
        outputs_on, stats_on, seconds_on = _serve_spec_trace(
            runner, prompts, _spec_config(), max_new
        )
        # Speculation must never change what a request generates.
        for request_id, output in outputs_off.items():
            assert np.array_equal(output.generated, outputs_on[request_id].generated)
        tokens = stats_on.generated_tokens
        assert tokens == stats_off.generated_tokens
        speedup = seconds_off / seconds_on
        if not best or speedup > best["speedup"]:
            best = {
                "num_requests": len(prompts),
                "tokens": tokens,
                "decode_forwards_off": stats_off.decode_iterations,
                "decode_forwards_on": stats_on.decode_iterations,
                "accept_rate": stats_on.spec_accept_rate(),
                "verify_forwards": stats_on.spec_verify_iterations,
                "decode_tokens_per_s_off": tokens / seconds_off,
                "decode_tokens_per_s_on": tokens / seconds_on,
                "speedup": speedup,
            }
    return best


def run_speculative_bench() -> dict:
    """Speculative vs plain decode throughput on extractive and control traces."""
    if full_evaluation_enabled():
        pool, max_new = 64, 96
    else:
        pool, max_new = 48, 48
    weights = get_language_model(MODEL_NAME)
    corpus_train, _ = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    calibration = calibration_samples(corpus_train, seq_len=48, num_samples=4, seed=7)
    runner = TenderQuantizer(
        TenderConfig(bits=8, num_groups=8, row_chunk_size=32), implicit=True
    ).quantize(weights, calibration)

    repetitive = build_extractive_trace(runner, corpus_train, pool, SPEC_REQUESTS)
    control = [corpus_train[i * 43 : i * 43 + 24] for i in range(SPEC_REQUESTS)]
    shared = _measure_spec_trace(runner, repetitive, max_new)
    disjoint = _measure_spec_trace(runner, control, max_new=24)

    entry = get_zoo_entry(MODEL_NAME)
    analytic = SpeculativeWorkload(
        draft_tokens=SPEC_MAX_DRAFT,
        accept_rate=shared["accept_rate"],
        context=repetitive[0].shape[0] + max_new,
        d_model=entry.paper_d_model,
        d_ff=entry.paper_d_ff,
        num_heads=entry.paper_num_heads,
        num_layers=entry.paper_num_layers,
        batch=4,
    )
    return {
        "repetitive": shared,
        "control": disjoint,
        "analytic_speedup_tender_sw": analytic.speedup("rtx3090")["Tender SW"],
    }


# ----------------------------------------------------------------------
# Priority preemption: bursty two-class trace vs FIFO admission
# ----------------------------------------------------------------------
PREEMPT_BATCH = 2
#: Block size 4 keeps the unpublished tail a resumed victim must re-prefill
#: short (at most 3 positions + the pending token), which is what holds the
#: aggregate-throughput cost of preemption under the 5% gate below.
PREEMPT_BLOCK = 4
PREEMPT_LOW = 5
PREEMPT_HIGH = 0
PREEMPT_LOW_BUDGET = 28
PREEMPT_HIGH_BUDGET = 3


@dataclass
class ClassedRequest:
    prompt: "np.ndarray"
    priority: int
    budget: int
    arrival: float


def build_two_class_trace(tokens, num_low: int, num_high: int, seed: int) -> List[ClassedRequest]:
    """A bursty two-class trace: background stream plus urgent bursts.

    The low class is a Poisson stream of long generations arriving from
    ``t = 0`` — enough of them to keep every slot of a batch-``PREEMPT_BATCH``
    scheduler busy decoding.  The high class arrives in two short bursts
    *after* the batch has saturated, with short prompts and small budgets:
    the interactive traffic whose TTFT the preemption policy protects.
    """
    rng = np.random.default_rng(seed)
    requests = []
    arrivals = np.cumsum(rng.exponential(scale=1.0, size=num_low))
    for index in range(num_low):
        start = (index * 17) % 300
        requests.append(
            ClassedRequest(
                prompt=tokens[start : start + 6 + (index % 4)],
                priority=PREEMPT_LOW,
                budget=PREEMPT_LOW_BUDGET,
                arrival=float(arrivals[index]),
            )
        )
    burst_starts = (10.0, 26.0)
    for index in range(num_high):
        start = 320 + (index * 11) % 100
        burst = burst_starts[index % len(burst_starts)]
        requests.append(
            ClassedRequest(
                prompt=tokens[start : start + 4 + (index % 3)],
                priority=PREEMPT_HIGH,
                budget=PREEMPT_HIGH_BUDGET,
                arrival=burst + 0.25 * (index // len(burst_starts)),
            )
        )
    return requests


def _serve_two_class_trace(runner, trace: List[ClassedRequest], preemption: bool) -> tuple:
    """Serve the trace once; FIFO baseline flattens every priority to zero."""
    scheduler = Scheduler(
        runner,
        GenerationConfig(max_new_tokens=max(r.budget for r in trace)),
        max_batch_size=PREEMPT_BATCH,
        block_size=PREEMPT_BLOCK,
        prefix_cache=True,
        preemption=preemption,
        record_logits=False,
    )
    for request in trace:
        scheduler.submit(
            request.prompt,
            max_new_tokens=request.budget,
            arrival_time=request.arrival,
            priority=request.priority if preemption else 0,
        )
    start = time.perf_counter()
    outputs = {output.request_id: output for output in scheduler.run()}
    return outputs, scheduler.stats, time.perf_counter() - start


def _ttft_percentile(outputs, request_ids, q: float) -> float:
    """Deterministic tick-based TTFT percentile over the given requests."""
    values = [outputs[rid].first_token_at - outputs[rid].arrival_time for rid in request_ids]
    return float(np.percentile(values, q))


def run_preemption_bench() -> dict:
    """High-priority TTFT under preemption vs FIFO on a bursty two-class trace."""
    weights = get_language_model(MODEL_NAME)
    corpus_train, _ = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    calibration = calibration_samples(corpus_train, seq_len=48, num_samples=4, seed=7)
    runner = TenderQuantizer(
        TenderConfig(bits=8, num_groups=8, row_chunk_size=32), implicit=True
    ).quantize(weights, calibration)

    trace = build_two_class_trace(corpus_train, num_low=5, num_high=6, seed=31)
    fifo_outputs, fifo_stats, fifo_s = _serve_two_class_trace(runner, trace, preemption=False)
    prio_outputs, prio_stats, prio_s = _serve_two_class_trace(runner, trace, preemption=True)

    # Preemption must never change what a request generates: every resumed
    # victim replays to bit-identical tokens (Tender's integer pipeline).
    for request_id, output in fifo_outputs.items():
        assert np.array_equal(output.generated, prio_outputs[request_id].generated)
    assert prio_stats.preemptions >= 1, "the bursty trace must actually trigger preemption"

    high_ids = [rid for rid, out in prio_outputs.items() if out.priority == PREEMPT_HIGH]
    fifo_p99 = _ttft_percentile(fifo_outputs, high_ids, 99.0)
    prio_p99 = _ttft_percentile(prio_outputs, high_ids, 99.0)
    ttft_speedup = fifo_p99 / prio_p99

    # Aggregate throughput in the deterministic unit GPU time actually
    # follows: generated tokens per *forwarded token row* (prefill rows plus
    # one row per decode token).  Iteration counts would overweight a
    # resumed victim's replay — a forward over the few unpublished tail
    # positions its prefix hits did not cover — as a whole pass, when its
    # row volume (the paper-relevant recompute cost) is tiny.
    tokens = prio_stats.generated_tokens
    assert tokens == fifo_stats.generated_tokens
    fifo_tpr = tokens / (fifo_stats.prefill_tokens + tokens)
    prio_tpr = tokens / (prio_stats.prefill_tokens + tokens)
    throughput_ratio = prio_tpr / fifo_tpr

    assert ttft_speedup >= 1.5, (
        f"high-priority p99 TTFT only improved {ttft_speedup:.2f}x under preemption"
    )
    assert throughput_ratio >= 0.95, (
        f"preemption cost {1 - throughput_ratio:.1%} aggregate tokens/row (>5%)"
    )

    entry = get_zoo_entry(MODEL_NAME)
    analytic = PreemptionWorkload(
        victim_context=10 + PREEMPT_LOW_BUDGET,
        resume_hit_rate=min(1.0, float(np.mean([
            out.prefix_hit_tokens / max(len(out.prompt) + len(out.generated), 1)
            for out in prio_outputs.values() if out.preemptions > 0
        ]))) if prio_stats.preemptions else 0.0,
        high_prompt_tokens=6,
        expected_wait_steps=PREEMPT_LOW_BUDGET,
        d_model=entry.paper_d_model,
        d_ff=entry.paper_d_ff,
        num_heads=entry.paper_num_heads,
        num_layers=entry.paper_num_layers,
        batch=PREEMPT_BATCH,
    )
    return {
        "num_low": sum(1 for r in trace if r.priority == PREEMPT_LOW),
        "num_high": len(high_ids),
        "preemptions": prio_stats.preemptions,
        "high_p99_ttft_fifo": fifo_p99,
        "high_p99_ttft_preempt": prio_p99,
        "high_ttft_speedup": ttft_speedup,
        "high_mean_ttft_preempt": prio_stats.mean_ttft(priority=PREEMPT_HIGH),
        "low_mean_ttft_preempt": prio_stats.mean_ttft(priority=PREEMPT_LOW),
        "tokens": tokens,
        "tokens_per_row_fifo": fifo_tpr,
        "tokens_per_row_preempt": prio_tpr,
        "throughput_ratio": throughput_ratio,
        "resume_prefix_hit_tokens": prio_stats.prefix_hit_tokens - fifo_stats.prefix_hit_tokens,
        "iterations_fifo": fifo_stats.total_iterations,
        "iterations_preempt": prio_stats.total_iterations,
        "fifo_wall_s": fifo_s,
        "preempt_wall_s": prio_s,
        "analytic_ttft_speedup_tender_sw": analytic.ttft_speedup("rtx3090")["Tender SW"],
    }


# ----------------------------------------------------------------------
# Observability: tracing-off vs tracing-on cost of the two-class serve
# ----------------------------------------------------------------------
OBS_ATTEMPTS = 4
#: Enabled tracing must cost at most this fraction of the untraced serve.
OBS_MAX_ENABLED_OVERHEAD = 0.05
#: The disabled path's guard residue must cost at most this fraction.
OBS_MAX_DISABLED_OVERHEAD = 0.01


def run_observability_bench() -> dict:
    """Wall-clock cost of request-lifecycle tracing on the preemption trace.

    Serves the two-class preemption trace untraced (``tracer=None``) and
    under a wall-clocked ``repro.obs.Tracer``, best of ``OBS_ATTEMPTS``.
    Three gates: tokens stay bit-identical (tracing is observation-only),
    the enabled run costs at most ``OBS_MAX_ENABLED_OVERHEAD`` of the
    untraced serve, and the disabled path's residue — one ``is not None``
    branch per emit site the enabled run proves hot, priced by measuring
    that branch — stays under ``OBS_MAX_DISABLED_OVERHEAD``.
    ``repro.gpu.ObservabilityOverheadWorkload`` provides the analytic
    per-step-tax expectation alongside the measurement.
    """
    from repro.gpu import ObservabilityOverheadWorkload, observability_overhead
    from repro.obs import Tracer, WallClock

    weights = get_language_model(MODEL_NAME)
    corpus_train, _ = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    calibration = calibration_samples(corpus_train, seq_len=48, num_samples=4, seed=7)
    runner = TenderQuantizer(
        TenderConfig(bits=8, num_groups=8, row_chunk_size=32), implicit=True
    ).quantize(weights, calibration)
    trace = build_two_class_trace(corpus_train, num_low=5, num_high=6, seed=31)

    def serve(tracer):
        scheduler = Scheduler(
            runner,
            GenerationConfig(max_new_tokens=max(r.budget for r in trace)),
            max_batch_size=PREEMPT_BATCH,
            block_size=PREEMPT_BLOCK,
            prefix_cache=True,
            preemption=True,
            record_logits=False,
            tracer=tracer,
        )
        for request in trace:
            scheduler.submit(
                request.prompt,
                max_new_tokens=request.budget,
                arrival_time=request.arrival,
                priority=request.priority,
            )
        start = time.perf_counter()
        outputs = {output.request_id: output.generated for output in scheduler.run()}
        return outputs, scheduler.stats, time.perf_counter() - start

    off_times, on_times = [], []
    events = 0
    steps = 0
    for _ in range(OBS_ATTEMPTS):
        outputs_off, _, off_s = serve(None)
        tracer = Tracer(clock=WallClock())
        outputs_on, stats_on, on_s = serve(tracer)
        off_times.append(off_s)
        on_times.append(on_s)
        events = len(tracer.events)
        steps = stats_on.total_iterations
        # Tracing must never change what a request generates.
        for request_id, generated in outputs_off.items():
            assert np.array_equal(generated, outputs_on[request_id])

    off_s, on_s = min(off_times), min(on_times)
    enabled_overhead = max(0.0, on_s / off_s - 1.0)
    assert enabled_overhead <= OBS_MAX_ENABLED_OVERHEAD, (
        f"enabled tracing cost {enabled_overhead:.1%} of the serve "
        f"(> {OBS_MAX_ENABLED_OVERHEAD:.0%})"
    )

    # The disabled path's only residue is one `is not None` branch per emit
    # site; measure that branch and scale by the sites the enabled run hit.
    sink = None
    reps = 200_000
    start = time.perf_counter()
    for _ in range(reps):
        if sink is not None:
            raise AssertionError
    guard_s = (time.perf_counter() - start) / reps
    disabled_overhead = events * guard_s / off_s
    assert disabled_overhead <= OBS_MAX_DISABLED_OVERHEAD, (
        f"disabled tracing residue cost {disabled_overhead:.3%} of the serve "
        f"(> {OBS_MAX_DISABLED_OVERHEAD:.0%})"
    )

    entry = get_zoo_entry(MODEL_NAME)
    events_per_step = events / max(1, steps)
    analytic = ObservabilityOverheadWorkload(
        events_per_step=events_per_step,
        d_model=entry.paper_d_model,
        d_ff=entry.paper_d_ff,
        num_heads=entry.paper_num_heads,
        num_layers=entry.paper_num_layers,
        batch=PREEMPT_BATCH,
        context=PREEMPT_LOW_BUDGET + 10,
        guard_sites_per_step=events_per_step,
        guard_cost_ns=guard_s * 1e9,
    )
    modeled = observability_overhead(analytic, "rtx3090")["Tender SW"]
    return {
        "events": events,
        "events_per_step": events_per_step,
        "untraced_wall_s": off_s,
        "traced_wall_s": on_s,
        "enabled_overhead": enabled_overhead,
        "disabled_overhead": disabled_overhead,
        "guard_cost_ns": guard_s * 1e9,
        "analytic_enabled_overhead_tender_sw": modeled["enabled_overhead_ratio"],
        "analytic_disabled_overhead_tender_sw": modeled["disabled_overhead_ratio"],
    }


# ----------------------------------------------------------------------
# Fault tolerance: seeded replica kills over a sticky-routed pool
# ----------------------------------------------------------------------
FT_REPLICAS = 3
FT_BATCH = 2
FT_BLOCK = 4
FT_TEMPLATES = 2
FT_REQUESTS = 8
FT_BUDGET = 12
#: Pool iterations at which the scripted chaos schedule kills a replica —
#: late enough that the victims hold committed tokens worth replaying,
#: spread across two replicas so two distinct failovers are exercised.
FT_KILLS = {2: 0, 6: 1}


def build_fault_tolerance_trace(tokens, seed: int) -> List[tuple]:
    """A template-heavy Poisson trace for the replica pool.

    Every prompt opens with one of ``FT_TEMPLATES`` shared templates, so
    sticky-template routing lands each template's requests on one replica
    and a recovered request's replay finds its template prefix already
    published on the failover target — the prefix-hit recovery the
    goodput gate below depends on.
    """
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(scale=0.5, size=FT_REQUESTS))
    trace = []
    for index in range(FT_REQUESTS):
        template = tokens[(index % FT_TEMPLATES) * 64 : (index % FT_TEMPLATES) * 64 + 10]
        suffix = tokens[200 + index * 7 : 200 + index * 7 + 2 + index % 3]
        trace.append((np.concatenate([template, suffix]), float(arrivals[index])))
    return trace


def _serve_pool_trace(runner, trace: List[tuple], injector, runner_factory=None) -> tuple:
    """Serve the trace once through a fresh pool; ``injector=None`` is clean."""
    pool = ReplicaPool(
        runner,
        num_replicas=FT_REPLICAS,
        config=GenerationConfig(max_new_tokens=FT_BUDGET),
        runner_factory=runner_factory,
        fault_injector=injector,
        max_batch_size=FT_BATCH,
        block_size=FT_BLOCK,
        record_logits=False,
    )
    for prompt, arrival in trace:
        pool.submit(prompt, arrival_time=arrival)
    start = time.perf_counter()
    outputs = {output.request_id: output for output in pool.run()}
    return outputs, pool, time.perf_counter() - start


def run_fault_tolerance_bench() -> dict:
    """Chaos goodput and bit-exact recovery over a 3-replica pool."""
    weights = get_language_model(MODEL_NAME)
    corpus_train, _ = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    calibration = calibration_samples(corpus_train, seq_len=48, num_samples=4, seed=7)
    runner = TenderQuantizer(
        TenderConfig(bits=8, num_groups=8, row_chunk_size=32), implicit=True
    ).quantize(weights, calibration)

    trace = build_fault_tolerance_trace(corpus_train, seed=43)
    clean_outputs, clean_pool, clean_s = _serve_pool_trace(runner, trace, None)
    injector = FaultInjector(seed=0, kill_at=dict(FT_KILLS))
    chaos_outputs, chaos_pool, chaos_s = _serve_pool_trace(runner, trace, injector)

    # A replica kill must never change what a request generates: every
    # checkpointed victim replays on its failover replica to bit-identical
    # tokens (Tender's integer pipeline), never re-samples.
    for request_id, output in clean_outputs.items():
        assert np.array_equal(output.generated, chaos_outputs[request_id].generated)
    recoveries = chaos_pool.cluster_stats.recoveries
    assert recoveries >= 1, "the scripted kills never exercised the replay path"
    assert chaos_pool.cluster_stats.degraded_requests == 0, (
        "this trace fits the retry budget; nothing should be shed"
    )

    # Goodput in the same deterministic unit as the preemption bench:
    # generated tokens per forwarded token row.  The pool retains the
    # counters of schedulers discarded by crash rebuilds, so generated
    # tokens are conserved across runs and recovery recompute shows up as
    # exactly the extra prefill rows; prefix-hit replay is what keeps the
    # chaos run within the 80% floor of fault-free.
    clean_stats, chaos_stats = clean_pool.stats, chaos_pool.stats
    tokens = chaos_stats["generated_tokens"]
    assert tokens == clean_stats["generated_tokens"]
    clean_tpr = tokens / (clean_stats["prefill_tokens"] + tokens)
    chaos_tpr = tokens / (chaos_stats["prefill_tokens"] + tokens)
    goodput_ratio = chaos_tpr / clean_tpr
    assert goodput_ratio >= 0.8, (
        f"chaos goodput fell to {goodput_ratio:.0%} of fault-free (>20% recompute)"
    )

    # The replayed rows the cache served vs the ones actually recomputed —
    # the measured counterpart of the analytic ``resume_hit_rate``.
    replay_saved = chaos_stats["prefix_hit_tokens"] - clean_stats["prefix_hit_tokens"]
    replay_cost = chaos_stats["prefill_tokens"] - clean_stats["prefill_tokens"]
    resume_hit_rate = (
        replay_saved / (replay_saved + replay_cost) if replay_saved + replay_cost > 0 else 0.0
    )
    mean_context = int(round(np.mean([
        len(out.prompt) + len(out.generated) for out in chaos_outputs.values()
    ])))
    failure_rate = chaos_pool.cluster_stats.failures / max(
        chaos_pool.cluster_stats.iterations * FT_REPLICAS, 1
    )

    entry = get_zoo_entry(MODEL_NAME)
    analytic = FaultToleranceWorkload(
        num_replicas=FT_REPLICAS,
        batch=FT_BATCH,
        mean_context=mean_context,
        failure_rate=min(failure_rate, 0.999),
        resume_hit_rate=min(1.0, max(0.0, resume_hit_rate)),
        retry_backoff_steps=0.0,
        d_model=entry.paper_d_model,
        d_ff=entry.paper_d_ff,
        num_heads=entry.paper_num_heads,
        num_layers=entry.paper_num_layers,
    )
    return {
        "num_requests": FT_REQUESTS,
        "num_replicas": FT_REPLICAS,
        "kills": len(FT_KILLS),
        "failures": chaos_pool.cluster_stats.failures,
        "recoveries": recoveries,
        "degraded": chaos_pool.cluster_stats.degraded_requests,
        "tokens": tokens,
        "tokens_per_row_fault_free": clean_tpr,
        "tokens_per_row_chaos": chaos_tpr,
        "goodput_ratio": goodput_ratio,
        "resume_hit_rate": resume_hit_rate,
        "mean_context": mean_context,
        "iterations_fault_free": clean_pool.cluster_stats.iterations,
        "iterations_chaos": chaos_pool.cluster_stats.iterations,
        "fault_free_wall_s": clean_s,
        "chaos_wall_s": chaos_s,
        "analytic_goodput_ratio_tender_sw": fault_tolerance_goodput(analytic, "rtx3090")[
            "Tender SW"
        ]["goodput_ratio"],
    }


# ----------------------------------------------------------------------
# Tensor parallelism: sharded Tender runners over the collective transport
# ----------------------------------------------------------------------
TP_SHARDS = 2
#: Shard counts the analytic speedup/goodput curve sweeps.
TP_ANALYTIC_SHARDS = [1, 2, 4, 8]
#: Collective sequence number at which the scripted chaos kills shard 1 —
#: deep enough into the trace that the group holds committed tokens, so
#: recovery replays real work onto the rebuilt group.
TP_KILL_SEQ = 40
#: Early collective whose shard-0 message is corrupted on the wire, proving
#: the checksum catches it (and the pristine retry keeps parity).
TP_CORRUPT_SEQ = 3


def run_tensor_parallel_bench() -> dict:
    """Sharded-vs-solo parity, shard-kill recovery, and the comm-cost curve."""
    weights = get_language_model(MODEL_NAME)
    corpus_train, _ = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    calibration = calibration_samples(corpus_train, seq_len=48, num_samples=4, seed=7)
    runner = TenderQuantizer(
        TenderConfig(bits=8, num_groups=8, row_chunk_size=32), implicit=True
    ).quantize(weights, calibration)

    trace = build_fault_tolerance_trace(corpus_train, seed=47)
    groups: List[CollectiveGroup] = []

    def shard_factory(injector):
        def factory(replica_id):
            group = CollectiveGroup(TP_SHARDS, fault_injector=injector)
            groups.append(group)
            return ShardedRunner(runner, TP_SHARDS, group=group)

        return factory

    solo_outputs, _, solo_s = _serve_pool_trace(runner, trace, None)
    clean_outputs, clean_pool, clean_s = _serve_pool_trace(
        runner, trace, None, runner_factory=shard_factory(None)
    )
    # One injector shared across every group the pool builds: the scripted
    # kill fires exactly once (max_kills), so the rebuilt group runs clean;
    # the scripted corruption proves the checksum-and-retry path on the way.
    chaos_injector = CollectiveFaultInjector(
        seed=0,
        kill_at={TP_KILL_SEQ: 1},
        corrupt_at={TP_CORRUPT_SEQ: 0},
        max_kills=1,
    )
    chaos_outputs, chaos_pool, chaos_s = _serve_pool_trace(
        runner, trace, None, runner_factory=shard_factory(chaos_injector)
    )

    # Column-parallel sharding must be invisible to every caller: tokens are
    # bit-identical to the solo pool, clean *and* while the transport is
    # corrupting messages and losing a shard mid-trace (Tender implicit —
    # the calibration tables replicate because the channel axis never
    # splits; see docs/architecture.md).
    for request_id, output in solo_outputs.items():
        assert np.array_equal(output.generated, clean_outputs[request_id].generated)
        assert np.array_equal(output.generated, chaos_outputs[request_id].generated)
    recoveries = chaos_pool.cluster_stats.recoveries
    assert chaos_pool.cluster_stats.failures >= 1, "the scripted shard kill never fired"
    assert recoveries >= 1, "the dead shard group was never recovered"
    assert chaos_pool.cluster_stats.degraded_requests == 0
    corruption_caught = sum(group.stats.corruption_caught for group in groups)
    assert corruption_caught >= 1, "the scripted corruption was never caught"

    clean_stats, chaos_stats = clean_pool.stats, chaos_pool.stats
    tokens = chaos_stats["generated_tokens"]
    assert tokens == clean_stats["generated_tokens"]
    clean_tpr = tokens / (clean_stats["prefill_tokens"] + tokens)
    chaos_tpr = tokens / (chaos_stats["prefill_tokens"] + tokens)
    goodput_ratio = chaos_tpr / clean_tpr
    assert goodput_ratio >= 0.8, (
        f"shard-kill goodput fell to {goodput_ratio:.0%} of fault-free"
    )

    # The analytic communication-inclusive curve over shard counts, at the
    # paper-scale dimensions of the simulated model: compute divides by the
    # shard count, the six per-layer all-gathers (plus the LM-head gather)
    # come back, and whole-group recovery discounts the goodput.
    mean_context = int(round(np.mean([
        len(out.prompt) + len(out.generated) for out in chaos_outputs.values()
    ])))
    entry = get_zoo_entry(MODEL_NAME)
    curve = []
    for num_shards in TP_ANALYTIC_SHARDS:
        workload = TensorParallelWorkload(
            num_shards=num_shards,
            batch=FT_BATCH,
            context=mean_context,
            d_model=entry.paper_d_model,
            d_ff=entry.paper_d_ff,
            num_heads=entry.paper_num_heads,
            num_layers=entry.paper_num_layers,
            vocab=weights.config.vocab_size,
            shard_failure_rate=0.002,
            resume_hit_rate=0.6,
            retry_backoff_steps=1.0,
        )
        tender = tensor_parallel_speedup(workload, "rtx3090")["Tender SW"]
        curve.append({
            "num_shards": num_shards,
            "comm_ms": tender["comm_ms"],
            "speedup": tender["speedup"],
            "goodput_ratio": tender["goodput_ratio"],
        })

    transport = {
        "collectives": sum(group.stats.collectives for group in groups),
        "retries": sum(group.stats.retries for group in groups),
        "corruption_caught": corruption_caught,
        "simulated_ms": sum(group.stats.simulated_ms for group in groups),
    }
    return {
        "num_requests": FT_REQUESTS,
        "num_shards": TP_SHARDS,
        "num_replicas": FT_REPLICAS,
        "tokens": tokens,
        "failures": chaos_pool.cluster_stats.failures,
        "recoveries": recoveries,
        "degraded": chaos_pool.cluster_stats.degraded_requests,
        "tokens_per_row_fault_free": clean_tpr,
        "tokens_per_row_chaos": chaos_tpr,
        "goodput_ratio": goodput_ratio,
        "transport": transport,
        "solo_wall_s": solo_s,
        "sharded_wall_s": clean_s,
        "chaos_wall_s": chaos_s,
        "analytic_curve_tender_sw": curve,
    }


def run_bench() -> dict:
    results = {
        "decode": run_generate_bench(),
        "vectorization": run_vectorization_bench(),
        "scheduling": run_continuous_batching_bench(),
        "prefix_cache": run_prefix_cache_bench(),
        "speculative": run_speculative_bench(),
        "preemption": run_preemption_bench(),
        "observability": run_observability_bench(),
        "fault_tolerance": run_fault_tolerance_bench(),
        "tensor_parallel": run_tensor_parallel_bench(),
    }
    if full_evaluation_enabled() or os.environ.get("REPRO_WRITE_BENCH") == "1":
        record = {
            "prefix_cache": results["prefix_cache"],
            "speculative": results["speculative"],
            "preemption": results["preemption"],
            "observability": results["observability"],
            "fault_tolerance": results["fault_tolerance"],
            "tensor_parallel": results["tensor_parallel"],
        }
        SERVING_RESULT_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return results


def test_generate_decode(benchmark, render):
    results = run_once(benchmark, run_bench)
    rows = results["decode"]
    vect = results["vectorization"]
    sched = results["scheduling"]
    prefix = results["prefix_cache"]
    spec = results["speculative"]
    preempt = results["preemption"]
    obs = results["observability"]
    fault = results["fault_tolerance"]
    tensor = results["tensor_parallel"]
    render(
        format_table(
            ["Scheme", "Wall ms/token", "Modeled GPU ms/step", "Tokens"],
            [[r.scheme, r.wall_ms_per_token, r.modeled_ms_per_step, r.tokens] for r in rows],
            title="Batched KV-cached generation (decode regime)",
        )
        + "\n\n"
        + format_table(
            ["Kernel", "ms per call"],
            [
                ["per-head loop", vect["loop_ms"]],
                ["vectorized", vect["vectorized_ms"]],
                ["speedup", vect["speedup"]],
            ],
            title="Tender attention_matmul: reference loop vs batched kernel",
        )
        + "\n\n"
        + format_table(
            ["Metric", "Continuous", "Static (classic)"],
            [
                ["forward passes", sched["continuous_iterations"], sched["static_iterations"]],
                [
                    "tokens / forward pass",
                    sched["continuous_tokens_per_iteration"],
                    sched["static_tokens_per_iteration"],
                ],
                ["wall s (measured policy)", sched["continuous_wall_s"], sched["gang_wall_s"]],
                ["speedup (measured)", sched["speedup_vs_static"], 1.0],
                ["speedup (analytic, saturated)", sched["analytic_saturated_speedup"], 1.0],
            ],
            title=(
                f"Continuous vs static batching: {sched['num_requests']} Poisson arrivals, "
                f"{sched['tokens']} tokens, batch {MAX_BATCH}"
            ),
        )
        + "\n\n"
        + format_table(
            ["Metric", "Shared-template trace", "Disjoint trace"],
            [
                ["prefix hit rate", prefix["shared"]["prefix_hit_rate"], prefix["disjoint"]["prefix_hit_rate"]],
                [
                    "prefill tokens (off -> on)",
                    f"{prefix['shared']['prefill_tokens_off']} -> {prefix['shared']['prefill_tokens_on']}",
                    f"{prefix['disjoint']['prefill_tokens_off']} -> {prefix['disjoint']['prefill_tokens_on']}",
                ],
                ["tokens/s cache off", prefix["shared"]["tokens_per_s_off"], prefix["disjoint"]["tokens_per_s_off"]],
                ["tokens/s cache on", prefix["shared"]["tokens_per_s_on"], prefix["disjoint"]["tokens_per_s_on"]],
                ["speedup (measured)", prefix["shared"]["speedup"], prefix["disjoint"]["speedup"]],
                ["speedup (analytic, Tender SW)", prefix["analytic_speedup_tender_sw"], 1.0],
            ],
            title=(
                f"Prefix-cached serving: {prefix['shared']['num_requests']} requests over "
                f"{PREFIX_TEMPLATES} templates, {prefix['overlap']:.0%} prefix overlap"
            ),
        )
        + "\n\n"
        + format_table(
            ["Metric", "Extractive trace", "Control trace"],
            [
                ["accept rate", spec["repetitive"]["accept_rate"], spec["control"]["accept_rate"]],
                [
                    "decode forwards (off -> on)",
                    f"{spec['repetitive']['decode_forwards_off']} -> {spec['repetitive']['decode_forwards_on']}",
                    f"{spec['control']['decode_forwards_off']} -> {spec['control']['decode_forwards_on']}",
                ],
                [
                    "decode tokens/s off",
                    spec["repetitive"]["decode_tokens_per_s_off"],
                    spec["control"]["decode_tokens_per_s_off"],
                ],
                [
                    "decode tokens/s on",
                    spec["repetitive"]["decode_tokens_per_s_on"],
                    spec["control"]["decode_tokens_per_s_on"],
                ],
                ["speedup (measured)", spec["repetitive"]["speedup"], spec["control"]["speedup"]],
                ["speedup (analytic, Tender SW)", spec["analytic_speedup_tender_sw"], 1.0],
            ],
            title=(
                f"Speculative decoding: {spec['repetitive']['num_requests']} extractive "
                f"requests, prompt-lookup drafting (max draft {SPEC_MAX_DRAFT})"
            ),
        )
        + "\n\n"
        + format_table(
            ["Metric", "FIFO", "Priority + preemption"],
            [
                ["high-class p99 TTFT (ticks)", preempt["high_p99_ttft_fifo"], preempt["high_p99_ttft_preempt"]],
                ["high-class p99 TTFT speedup", 1.0, preempt["high_ttft_speedup"]],
                ["tokens / forwarded row", preempt["tokens_per_row_fifo"], preempt["tokens_per_row_preempt"]],
                ["throughput ratio", 1.0, preempt["throughput_ratio"]],
                ["preemptions", 0, preempt["preemptions"]],
                ["speedup (analytic, Tender SW)", 1.0, preempt["analytic_ttft_speedup_tender_sw"]],
            ],
            title=(
                f"Priority preemption: {preempt['num_low']} background + "
                f"{preempt['num_high']} urgent requests, batch {PREEMPT_BATCH}"
            ),
        )
        + "\n\n"
        + format_table(
            ["Metric", "Tracing off", "Tracing on"],
            [
                ["wall s (best of attempts)", obs["untraced_wall_s"], obs["traced_wall_s"]],
                ["overhead (measured)", obs["disabled_overhead"], obs["enabled_overhead"]],
                [
                    "overhead (analytic, Tender SW)",
                    obs["analytic_disabled_overhead_tender_sw"],
                    obs["analytic_enabled_overhead_tender_sw"],
                ],
                ["trace events", 0, obs["events"]],
                ["events / step", 0.0, obs["events_per_step"]],
            ],
            title=(
                f"Observability: lifecycle tracing on the two-class trace "
                f"(tokens bit-identical, guard {obs['guard_cost_ns']:.0f} ns/site)"
            ),
        )
        + "\n\n"
        + format_table(
            ["Metric", "Fault-free", "Chaos (seeded kills)"],
            [
                ["replica kills", 0, fault["kills"]],
                ["recoveries", 0, fault["recoveries"]],
                ["degraded requests", 0, fault["degraded"]],
                ["tokens / forwarded row", fault["tokens_per_row_fault_free"], fault["tokens_per_row_chaos"]],
                ["goodput ratio", 1.0, fault["goodput_ratio"]],
                ["resume prefix-hit rate", 0.0, fault["resume_hit_rate"]],
                ["goodput ratio (analytic, Tender SW)", 1.0, fault["analytic_goodput_ratio_tender_sw"]],
            ],
            title=(
                f"Fault tolerance: {fault['num_requests']} requests over "
                f"{fault['num_replicas']} replicas, {fault['kills']} seeded kills"
            ),
        )
        + "\n\n"
        + format_table(
            ["Metric", "Sharded fault-free", "Sharded chaos"],
            [
                ["shard-group failures", 0, tensor["failures"]],
                ["recoveries", 0, tensor["recoveries"]],
                ["degraded requests", 0, tensor["degraded"]],
                ["corrupted collectives caught", 0, tensor["transport"]["corruption_caught"]],
                ["tokens / forwarded row", tensor["tokens_per_row_fault_free"], tensor["tokens_per_row_chaos"]],
                ["goodput ratio", 1.0, tensor["goodput_ratio"]],
            ],
            title=(
                f"Tensor parallelism: {tensor['num_requests']} requests over "
                f"{tensor['num_replicas']} replicas x {tensor['num_shards']} shards "
                f"(tokens bit-identical to solo)"
            ),
        )
        + "\n\n"
        + format_table(
            ["Shards", "Comm ms/step", "Speedup", "Goodput ratio"],
            [
                [point["num_shards"], point["comm_ms"], point["speedup"], point["goodput_ratio"]]
                for point in tensor["analytic_curve_tender_sw"]
            ],
            title="Analytic tensor-parallel curve (Tender SW, rtx3090, comm-inclusive)",
        )
    )
    # Every scheme generated the full batch of tokens.
    assert len(rows) == 5
    assert all(r.tokens == rows[0].tokens and r.tokens > 0 for r in rows)
    # The batched attention kernel is numerically identical and >= 5x faster.
    assert vect["identical"]
    assert vect["speedup"] >= 5.0, f"vectorized speedup only {vect['speedup']:.1f}x"
    # Continuous batching clears the acceptance bar over static batching.
    assert sched["peak_active"] <= MAX_BATCH
    assert sched["speedup_vs_static"] >= 1.5, (
        f"continuous batching only {sched['speedup_vs_static']:.2f}x over static"
    )
    # Prefix caching: >= 2x serving throughput at 80% prefix overlap (token
    # parity is asserted inside the measurement on every attempt), most of
    # the prompt work served from cache, and no regression without overlap.
    assert prefix["shared"]["speedup"] >= 2.0, (
        f"prefix caching only {prefix['shared']['speedup']:.2f}x on the shared-template trace"
    )
    assert prefix["shared"]["prefix_hit_rate"] >= 0.6
    assert prefix["disjoint"]["prefix_hit_rate"] == 0.0
    assert prefix["disjoint"]["prefill_tokens_on"] == prefix["disjoint"]["prefill_tokens_off"]
    assert prefix["disjoint"]["speedup"] >= 0.8, (
        f"prefix caching regressed the disjoint trace to {prefix['disjoint']['speedup']:.2f}x"
    )
    # Speculative decoding: >= 1.5x decode tokens/sec on the repetition-heavy
    # trace (token parity is asserted inside the measurement on every
    # attempt), with a high accept rate and genuinely fewer decode forwards;
    # the non-repetitive control must stay close to plain decode (the
    # drafter goes quiet rather than paying for hopeless verifies).
    assert spec["repetitive"]["speedup"] >= 1.5, (
        f"speculative decoding only {spec['repetitive']['speedup']:.2f}x on the extractive trace"
    )
    assert spec["repetitive"]["accept_rate"] >= 0.8
    assert spec["repetitive"]["decode_forwards_on"] < spec["repetitive"]["decode_forwards_off"]
    assert spec["control"]["speedup"] >= 0.7, (
        f"speculation regressed the control trace to {spec['control']['speedup']:.2f}x"
    )
    # Observability: the overhead gates live inside the bench, next to the
    # measurement; re-assert the recorded numbers so a stale record fails.
    assert obs["enabled_overhead"] <= OBS_MAX_ENABLED_OVERHEAD
    assert obs["disabled_overhead"] <= OBS_MAX_DISABLED_OVERHEAD
    assert obs["events"] > 0
    # Tensor parallelism: the chaos run recovered and kept its goodput (the
    # bit-parity asserts live inside the bench, next to the measurement).
    assert tensor["recoveries"] >= 1
    assert tensor["transport"]["corruption_caught"] >= 1
    assert tensor["goodput_ratio"] >= 0.8
    assert [p["num_shards"] for p in tensor["analytic_curve_tender_sw"]] == TP_ANALYTIC_SHARDS
