"""Benchmark: regenerate Figure 13 (implicit vs explicit requantization latency)."""

from benchmarks.conftest import run_once
from repro.experiments import render_figure13, run_figure13


def test_figure13_requantization(benchmark, render):
    rows = run_once(benchmark, run_figure13)
    render(render_figure13(rows))
    for row in rows:
        assert row.implicit_normalized < 1.02       # implicit tracks the no-decomposition baseline
        assert 1.1 < row.explicit_normalized < 2.2  # explicit slows down, up to ~1.7-2x
    eight = [r for r in rows if r.num_groups == 8]
    sixteen = [r for r in rows if r.num_groups == 16]
    assert max(r.explicit_normalized for r in eight) < max(r.explicit_normalized for r in sixteen)
