"""Benchmark: Index-Buffer fast kernels vs the reference Tender hot path.

Three measurements ride in one benchmark round, each asserting bit-identical
results before timing anything:

1. **Projection kernel** — ``TenderExecutor.project`` on a continuous-batching
   decode shape (batched rows at scattered positions spanning several row
   chunks), fast packed path vs the reference per-chunk loop.  This is the
   paper-faithful hot path the tentpole targets: the fast path must be at
   least 3x faster at ``num_groups=8``.
2. **Attention kernels** — the stacked fast kernels vs the reference
   vectorized (masked int64) kernel on decode- and prefill-shaped operands,
   implicit and explicit.
3. **End-to-end decode step** — ``TransformerRunner.prefill`` +
   ``decode_step`` over a KV-cache with ragged per-request positions, fast
   vs reference executor, on the same zoo model as
   ``bench_generate_decode.py``.

The results are written to ``BENCH_kernels.json`` at the repository root —
a committed perf-trajectory record — but only when ``REPRO_WRITE_BENCH=1``
(or a full evaluation) is requested, so ordinary tier-1 runs never dirty
the working tree with machine-local timings.  The tier-1 gate in
``tools/check_perf_smoke.py`` separately keeps the fast path from
regressing below the reference; both measure the shared workload from
``repro.core.perf``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.core import TenderConfig, TenderExecutor, TenderQuantizer
from repro.core.perf import best_of, decode_projection_operands, synthetic_projection_site
from repro.data import calibration_samples, load_corpus
from repro.experiments.report import format_table, full_evaluation_enabled
from repro.models import TransformerRunner, get_language_model
from repro.serve.kv_cache import KVCache
from repro.serve.paged_kv_cache import PagedKVCache

MODEL_NAME = "opt-6.7b-sim"
NUM_GROUPS = 8
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _record_requested() -> bool:
    """Whether this run should (over)write the committed perf record."""
    return full_evaluation_enabled() or os.environ.get("REPRO_WRITE_BENCH") == "1"


def _best_ratio(slow, fast, repeats, attempts=3, target=None):
    """(slow_s, fast_s) with the best ratio over a few attempts.

    A transient load spike on a shared machine can skew one sample, so the
    measurement is retried and the best ratio kept — contention has to
    persist across attempts to flake the tier-1 gate.
    """
    slow_s = fast_s = None
    for _ in range(attempts):
        attempt_slow = best_of(slow, repeats)
        attempt_fast = best_of(fast, repeats)
        if slow_s is None or attempt_slow / attempt_fast > slow_s / fast_s:
            slow_s, fast_s = attempt_slow, attempt_fast
        if target is not None and slow_s / fast_s >= target:
            break
    return slow_s, fast_s


def run_projection_bench() -> dict:
    """Fast packed projection vs the reference per-chunk loop (decode shape)."""
    repeats = 40 if full_evaluation_enabled() else 25
    config = TenderConfig(bits=8, num_groups=NUM_GROUPS, row_chunk_size=32)
    params = synthetic_projection_site(config)
    x, positions, weight = decode_projection_operands()  # rows scattered over 8 chunks

    fast = TenderExecutor(params, config, implicit=True, fast_kernels=True)
    reference = TenderExecutor(params, config, implicit=True, fast_kernels=False)
    identical = bool(
        np.array_equal(
            fast.project("site", x, weight, None, positions=positions),
            reference.project("site", x, weight, None, positions=positions),
        )
    )
    reference_s, fast_s = _best_ratio(
        lambda: reference.project("site", x, weight, None, positions=positions),
        lambda: fast.project("site", x, weight, None, positions=positions),
        repeats,
        target=6.0,
    )
    return {
        "identical": identical,
        "reference_us": reference_s * 1e6,
        "fast_us": fast_s * 1e6,
        "speedup": reference_s / fast_s,
    }


def run_attention_bench() -> dict:
    """Stacked fast attention kernels vs the reference vectorized kernel."""
    repeats = 15 if full_evaluation_enabled() else 8
    rng = np.random.default_rng(23)
    config = TenderConfig(bits=8, num_groups=NUM_GROUPS, quantize_attention=True)
    shapes = {
        "decode": ((16, 8, 1, 48), (16, 8, 48, 16)),
        "prefill": ((4, 8, 64, 64), (4, 8, 64, 16)),
    }
    results: dict = {}
    for shape_name, (a_shape, b_shape) in shapes.items():
        a = rng.normal(size=a_shape)
        a[..., 1] *= 30.0
        b = rng.normal(size=b_shape)
        for implicit in (True, False):
            fast = TenderExecutor({}, config, implicit=implicit, fast_kernels=True)
            reference = TenderExecutor({}, config, implicit=implicit, fast_kernels=False)
            identical = bool(
                np.array_equal(
                    fast.attention_matmul("qk", a, b), reference.attention_matmul("qk", a, b)
                )
            )
            reference_s, fast_s = _best_ratio(
                lambda: reference.attention_matmul("qk", a, b),
                lambda: fast.attention_matmul("qk", a, b),
                repeats,
                target=4.0 if shape_name == "prefill" else 1.2,
            )
            key = f"{shape_name}_{'implicit' if implicit else 'explicit'}"
            results[key] = {
                "identical": identical,
                "reference_us": reference_s * 1e6,
                "fast_us": fast_s * 1e6,
                "speedup": reference_s / fast_s,
            }
    return results


def run_decode_step_bench() -> dict:
    """End-to-end decode steps at scattered positions, fast vs reference."""
    steps = 8 if full_evaluation_enabled() else 5
    batch = 16
    weights = get_language_model(MODEL_NAME)
    model_config = weights.config
    corpus_train, _ = load_corpus("wiki", vocab_size=model_config.vocab_size).split()
    calibration = calibration_samples(corpus_train, seq_len=96, num_samples=4, seed=7)
    tender_config = TenderConfig(bits=8, num_groups=NUM_GROUPS, row_chunk_size=32)
    runners = {
        fast: TenderQuantizer(tender_config, implicit=True, fast_kernels=fast).quantize(
            weights, calibration
        )
        for fast in (True, False)
    }

    # Continuous-batching regime: every slot sits at its own position, so
    # each projection call sees rows spanning several row chunks.
    rng = np.random.default_rng(3)
    lengths = rng.integers(4, 120, size=batch)
    max_len = int(lengths.max())
    tokens = np.zeros((batch, max_len), dtype=np.int64)
    for row, length in enumerate(lengths):
        tokens[row, :length] = corpus_train[row * 7 : row * 7 + length]

    def decode_run(runner):
        cache = KVCache(
            model_config.num_layers, batch, model_config.num_heads, model_config.d_head,
            max_len + steps + 1,
        )
        next_tokens = runner.prefill(tokens, lengths, cache).argmax(axis=-1)
        start = time.perf_counter()
        for _ in range(steps):
            next_tokens = runner.decode_step(next_tokens, cache).argmax(axis=-1)
        return (time.perf_counter() - start) / steps, next_tokens

    _, fast_tokens = decode_run(runners[True])
    _, reference_tokens = decode_run(runners[False])
    identical = bool(np.array_equal(fast_tokens, reference_tokens))

    fast_s = reference_s = None
    for _ in range(3):
        attempt_fast, _ = decode_run(runners[True])
        attempt_reference, _ = decode_run(runners[False])
        if fast_s is None or attempt_reference / attempt_fast > reference_s / fast_s:
            fast_s, reference_s = attempt_fast, attempt_reference
        if reference_s / fast_s >= 3.6:
            break
    return {
        "identical": identical,
        "batch": batch,
        "steps": steps,
        "reference_ms_per_step": reference_s * 1e3,
        "fast_ms_per_step": fast_s * 1e3,
        "speedup": reference_s / fast_s,
    }


def run_paged_attention_bench() -> dict:
    """Long-context decode over the paged pool: fused block-table attention
    vs the gather-then-dense reference, at several attended context lengths.

    Both paths run the identical ``decode_step`` GEMMs; the reference
    additionally fancy-indexes every slot's KV blocks into dense per-view
    copies each layer each step (tallied by ``PagedKVCache.gather_bytes``),
    so the gap widens with context.  Tokens must match exactly and the
    fused path must move zero dense KV bytes; the analytic counterpart is
    ``repro.gpu.PagedAttentionWorkload``.
    """
    steps = 8 if full_evaluation_enabled() else 6
    batch = 16
    contexts = (64, 128, 240)
    weights = get_language_model(MODEL_NAME)
    model_config = weights.config
    corpus_train, _ = load_corpus("wiki", vocab_size=model_config.vocab_size).split()
    runner = TransformerRunner(weights)

    def decode_run(context, fused):
        pool = PagedKVCache.for_model(model_config, max_active=batch, block_size=16)
        view = pool.view([pool.reserve(context + steps) for _ in range(batch)])
        tokens = np.stack([corpus_train[row * 3 : row * 3 + context] for row in range(batch)])
        runner.fused_paged_attention = fused
        try:
            next_tokens = runner.prefill(tokens, np.full(batch, context), view).argmax(axis=-1)
            view.commit()
            gather_bytes = pool.gather_bytes
            generated = []
            start = time.perf_counter()
            for _ in range(steps):
                next_tokens = runner.decode_step(next_tokens, view).argmax(axis=-1)
                generated.append(next_tokens.copy())
            elapsed = (time.perf_counter() - start) / steps
        finally:
            runner.fused_paged_attention = True
        return elapsed, np.array(generated), pool.gather_bytes - gather_bytes

    results: dict = {"batch": batch, "steps": steps}
    for context in contexts:
        _, fused_tokens, fused_bytes = decode_run(context, fused=True)
        _, reference_tokens, reference_bytes = decode_run(context, fused=False)
        fused_s = reference_s = None
        for _ in range(3):
            attempt_fused, _, _ = decode_run(context, fused=True)
            attempt_reference, _, _ = decode_run(context, fused=False)
            if fused_s is None or attempt_reference / attempt_fused > reference_s / fused_s:
                fused_s, reference_s = attempt_fused, attempt_reference
            if reference_s / fused_s >= 1.8:
                break
        results[f"context_{context}"] = {
            "identical": bool(np.array_equal(fused_tokens, reference_tokens)),
            "fused_gather_bytes_per_step": fused_bytes / steps,
            "reference_gather_bytes_per_step": reference_bytes / steps,
            "gather_tokens_per_s": batch / reference_s,
            "fused_tokens_per_s": batch / fused_s,
            "speedup": reference_s / fused_s,
        }
    return results


def run_bench() -> dict:
    results = {
        "num_groups": NUM_GROUPS,
        "projection": run_projection_bench(),
        "attention": run_attention_bench(),
        "decode_step": run_decode_step_bench(),
        "paged_attention": run_paged_attention_bench(),
    }
    if _record_requested():
        RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return results


def test_executor_kernels(benchmark, render):
    results = run_once(benchmark, run_bench)
    projection = results["projection"]
    attention = results["attention"]
    decode = results["decode_step"]
    paged = results["paged_attention"]
    paged_rows = {
        key: row for key, row in paged.items() if key.startswith("context_")
    }
    render(
        format_table(
            ["Path", "Reference", "Fast", "Speedup"],
            [
                [
                    "project (decode rows, us)",
                    projection["reference_us"],
                    projection["fast_us"],
                    projection["speedup"],
                ],
                *[
                    [f"attention {key} (us)", row["reference_us"], row["fast_us"], row["speedup"]]
                    for key, row in attention.items()
                ],
                [
                    "decode_step (ms/step)",
                    decode["reference_ms_per_step"],
                    decode["fast_ms_per_step"],
                    decode["speedup"],
                ],
                *[
                    [
                        f"paged decode @{key.split('_')[1]} (tok/s)",
                        row["gather_tokens_per_s"],
                        row["fused_tokens_per_s"],
                        row["speedup"],
                    ]
                    for key, row in paged_rows.items()
                ],
            ],
            title=f"Index-Buffer fast kernels vs reference (num_groups={NUM_GROUPS})",
        )
    )
    # Bit-identity is non-negotiable on every measured path.
    assert projection["identical"]
    assert decode["identical"]
    assert all(row["identical"] for row in attention.values())
    assert all(row["identical"] for row in paged_rows.values())
    # The acceptance bar: >= 3x on the decode hot path at num_groups=8.
    assert projection["speedup"] >= 3.0, f"projection only {projection['speedup']:.2f}x"
    assert decode["speedup"] >= 3.0, f"decode step only {decode['speedup']:.2f}x"
    # Attention kernels must win clearly where FLOPs dominate (prefill).
    assert attention["prefill_implicit"]["speedup"] >= 2.0
    assert attention["prefill_explicit"]["speedup"] >= 2.0
    # Gather-free decode: zero dense KV copies, >= 1.3x at the longest context.
    assert all(row["fused_gather_bytes_per_step"] == 0 for row in paged_rows.values())
    longest = paged_rows[f"context_{max(int(k.split('_')[1]) for k in paged_rows)}"]
    assert longest["speedup"] >= 1.3, f"paged decode only {longest['speedup']:.2f}x"
    # The committed perf-trajectory record exists (rewritten only when
    # REPRO_WRITE_BENCH=1 / full evaluation asks for fresh numbers).
    assert RESULT_PATH.is_file()
