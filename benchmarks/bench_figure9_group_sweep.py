"""Benchmark: regenerate Figure 9 (perplexity vs number of groups) plus an alpha ablation."""

from benchmarks.conftest import run_once
from repro.experiments import render_figure9, run_figure9
from repro.experiments.report import current_profile


def run_sweeps():
    """Main group sweep at alpha=2 plus a short alpha=4 ablation.

    The alpha=4 ablation uses fewer groups because the rescale factor between
    the first and last group grows as alpha^(G-1) and must stay within the
    32-bit accumulator headroom (the same constraint the hardware has).
    Smoke mode keeps only the sweep points the assertions below consume.
    """
    smoke = current_profile().smoke
    group_counts = (1, 8) if smoke else (1, 2, 4, 8, 12)
    ablation_counts = (4,) if smoke else (2, 4, 6)
    points = run_figure9(group_counts=group_counts, bit_widths=(4, 8), alphas=(2,))
    points += run_figure9(group_counts=ablation_counts, bit_widths=(4,), alphas=(4,))
    return points


def test_figure9_group_sweep(benchmark, render):
    points = run_once(benchmark, run_sweeps)
    render(render_figure9(points))
    int4 = {p.num_groups: p.perplexity for p in points if p.bits == 4 and p.alpha == 2}
    int8 = {p.num_groups: p.perplexity for p in points if p.bits == 8 and p.alpha == 2}
    # More groups help, most dramatically at INT4 (Figure 9a vs 9b).
    assert int4[8] < int4[1]
    assert int8[8] <= int8[1] * 1.02
    assert (int4[1] - int4[8]) > (int8[1] - int8[8])
    # Alpha ablation: at equal dynamic-range coverage (2^8 vs 4^4 thresholds),
    # the finer alpha=2 spacing is at least as accurate.
    alpha4 = {p.num_groups: p.perplexity for p in points if p.alpha == 4}
    assert int4[8] <= alpha4[4] * 1.05
