"""Benchmark: regenerate Table I (perplexity vs activation quantization granularity)."""

from benchmarks.conftest import run_once
from repro.experiments import render_table1, run_table1


def test_table1_granularity(benchmark, render):
    rows = run_once(benchmark, run_table1)
    render(render_table1(rows))
    labels = [row.label for row in rows]
    assert labels[0] == "FP16"
    assert any(label.startswith("INT4") for label in labels)
