"""Benchmark: regenerate Table III (sequence-length sensitivity)."""

from benchmarks.conftest import run_once
from repro.experiments import render_table3, run_table3


def test_table3_sequence_lengths(benchmark, render):
    cells = run_once(benchmark, run_table3)
    render(render_table3(cells))
    index = {(c.precision, c.scheme, c.seq_len, c.dataset): c.perplexity for c in cells}
    seq_lens = sorted({c.seq_len for c in cells})
    for seq_len in seq_lens:
        base = index[("FP16", "Base", seq_len, "wiki")]
        assert index[("INT8", "Tender", seq_len, "wiki")] < base * 1.15
        # Tender (all) quantizes every matmul at a small extra penalty.
        assert index[("INT8", "Tender (all)", seq_len, "wiki")] < base * 1.3
