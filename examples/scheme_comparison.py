"""Compare Tender against every implemented PTQ scheme on one zoo model.

This is Table II (plus the block-floating-point formats of Tables VI/VII) in
one script: the OPT-6.7B stand-in checkpoint is loaded from the cache
(training it on first use), and every scheme in the registry is evaluated on
the wiki-like and ptb-like test sets at INT8 and INT4.

Run:  python examples/scheme_comparison.py [model-name]
"""

from __future__ import annotations

import sys

from repro.baselines import SchemeRequest, build_runner
from repro.data import calibration_samples, load_corpus
from repro.eval import evaluate_perplexity
from repro.experiments.report import format_table
from repro.models import get_language_model

SCHEMES = [
    "Base", "per-tensor", "per-row", "per-column",
    "SmoothQuant", "LLM.int8", "ANT", "OliVe", "RPTQ",
    "MSFP12", "MSFP12-OL", "SMX4", "MXFP4", "Tender",
]


def main(model_name: str = "opt-6.7b-sim") -> None:
    print(f"loading checkpoint {model_name} (trains once, then cached)...")
    weights = get_language_model(model_name)
    pile_train, _ = load_corpus("pile", vocab_size=weights.config.vocab_size).split()
    calibration = calibration_samples(pile_train, seq_len=64, num_samples=16)
    datasets = {name: load_corpus(name, vocab_size=weights.config.vocab_size).split()[1]
                for name in ("wiki", "ptb")}

    rows = []
    for bits in (8, 4):
        for scheme in SCHEMES:
            request = SchemeRequest(
                weights=weights, calibration=calibration, bits=bits,
                options={"num_groups": 12, "row_chunk_size": 32},
            )
            runner = build_runner(scheme, request)
            row = [f"INT{bits}" if scheme != "Base" else "FP16", scheme]
            for dataset_name, eval_tokens in datasets.items():
                row.append(evaluate_perplexity(runner, eval_tokens, seq_len=64, max_windows=6))
            rows.append(row)
            print(f"  evaluated {scheme} at INT{bits}")

    headers = ["Precision", "Scheme"] + [f"{name} ppl" for name in datasets]
    print()
    print(format_table(headers, rows, title=f"PTQ perplexity on {model_name} (lower is better)"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "opt-6.7b-sim")
