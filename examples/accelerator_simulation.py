"""Accelerator case study: speedup, energy, and requantization overhead.

Reproduces the hardware side of the paper on the full-scale model dimensions:

* Table V  — area/power of the Tender accelerator,
* Figure 10 — speedup of ANT / OLAccel / OliVe / Tender (normalized to ANT),
* Figure 11 — energy efficiency,
* Figure 13 — implicit vs explicit requantization,

plus a peek at the functional Multi-Scale Systolic Array, showing that the
1-bit-shifter hardware computes exactly the same integers as the algorithmic
implicit-requantization reference.

Run:  python examples/accelerator_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator import MultiScaleSystolicArray, model_prefill_workload, simulate_on
from repro.core import decompose_channels, implicit_requantized_matmul, quantize_decomposed
from repro.experiments import (
    render_figure10,
    render_figure11,
    render_figure13,
    render_table5,
    run_figure10,
    run_figure11,
    run_figure13,
    run_table5,
)
from repro.quant import Granularity, compute_scale, quantize_symmetric


def functional_msa_demo() -> None:
    """Show bit-exact agreement between the MSA model and the algorithm."""
    rng = np.random.default_rng(0)
    activation = rng.normal(size=(8, 24))
    activation[:, 3] *= 50.0  # one outlier channel
    cmax = np.abs(activation).max(axis=0)
    decomposition = decompose_channels(cmax, num_groups=6, bits=8)
    quantized, _ = quantize_decomposed(activation, decomposition)
    weight = rng.normal(size=(24, 8))
    w_scale = compute_scale(weight, 8, Granularity.PER_COLUMN)
    q_weight = quantize_symmetric(weight, w_scale, 8)

    msa = MultiScaleSystolicArray(rows=8, cols=8)
    order = decomposition.channel_order
    accumulators = msa.run_tile(quantized[:, order], q_weight[order], decomposition.group_sizes.tolist())
    hardware = accumulators * decomposition.group_scales[-1] * w_scale
    reference = implicit_requantized_matmul(quantized, decomposition, q_weight, w_scale)
    print("functional MSA vs algorithmic reference: max abs difference =",
          float(np.abs(hardware - reference).max()))
    print(f"  cycles: {msa.cycles} (including {msa.rescale_bubbles} one-cycle rescale bubbles)\n")


def main() -> None:
    print(render_table5(run_table5()), "\n")

    models = ("opt-6.7b-sim", "opt-66b-sim", "llama-2-7b-sim", "llama-2-70b-sim")
    print(render_figure10(run_figure10(models=models)), "\n")
    print(render_figure11(run_figure11(models=models)), "\n")
    print(render_figure13(run_figure13(models=("opt-6.7b-sim", "llama-2-70b-sim"))), "\n")

    functional_msa_demo()

    # A single-workload drill-down: where does the time go?
    workload = model_prefill_workload("opt-6.7b-sim", seq_len=2048)
    result = simulate_on("Tender", workload, num_groups=8)
    print(f"Tender on {workload.name}: {result.seconds * 1e3:.2f} ms, "
          f"{result.throughput_tops():.1f} TMAC/s, {result.energy_j:.3f} J")
    for gemm in result.gemms:
        bound = "memory" if gemm.memory_cycles > gemm.compute_cycles else "compute"
        print(f"  {gemm.name:18s} {gemm.total_cycles:>12d} cycles ({bound}-bound)")


if __name__ == "__main__":
    main()
