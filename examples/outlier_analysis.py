"""Visualise the activation-outlier structure and how Tender decomposes it.

Reproduces the analysis behind Figures 2-4 of the paper in text form:

* per-channel activation ranges of the attention / feed-forward inputs
  (a few channels dominate, the same ones in every layer),
* weight ranges for comparison (flat),
* the power-of-two channel decomposition Tender derives from calibration:
  group thresholds, per-group channel counts, and the resulting per-channel
  scale factors.

Run:  python examples/outlier_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.core import TenderConfig, calibrate_tender
from repro.data import calibration_samples, load_corpus
from repro.experiments import render_figure2, render_figure3, run_figure2, run_figure3
from repro.models import capture_activations, get_language_model, measure_channel_ranges


def main(model_name: str = "opt-6.7b-sim") -> None:
    weights = get_language_model(model_name)
    print(render_figure2(run_figure2(model_name)), "\n")
    print(render_figure3(run_figure3(model_name)), "\n")

    # Show the actual channel profile of the attention input of layer 0.
    _, eval_tokens = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    activation = capture_activations(weights, eval_tokens[:64])["block0.attn.q_proj"]
    channel_ranges = measure_channel_ranges(activation)
    top = np.argsort(channel_ranges)[::-1][:8]
    print("top-8 channels by absolute maximum (channel: CMax):")
    print("  " + ", ".join(f"{int(c)}: {channel_ranges[c]:.1f}" for c in top))
    print(f"median channel CMax: {np.median(channel_ranges):.2f}\n")

    # And the decomposition Tender's calibration derives for that site.
    pile_train, _ = load_corpus("pile", vocab_size=weights.config.vocab_size).split()
    config = TenderConfig(bits=4, num_groups=8, row_chunk_size=32)
    params = calibrate_tender(weights, calibration_samples(pile_train, 64, 16), config)
    decomposition = params["block0.attn.q_proj"].chunks[0].decomposition
    print("Tender channel decomposition of block0.attn.q_proj (chunk 0):")
    print(f"  TMax = {decomposition.tensor_absmax:.2f}, alpha = {decomposition.alpha}, "
          f"bits = {decomposition.bits}")
    for group in range(decomposition.num_groups):
        size = int(decomposition.group_sizes[group])
        scale = decomposition.group_scales[group]
        print(f"  group {group}: {size:3d} channels, scale = {scale:.4f}")
    print("\nOutlier channels occupy the small, coarse-scale groups; the bulk of the")
    print("channels share the finest scale - exactly the structure Figure 4 illustrates.")


if __name__ == "__main__":
    main()
