"""Continuous batching: serve a Poisson arrival trace through the scheduler.

This example drives the serving layer the way a traffic generator would:

1. load a cached zoo checkpoint (trains on first use) and quantize it with
   Tender,
2. build a Poisson arrival trace of mostly-short requests with a heavy tail
   of long generations (chat-shaped traffic),
3. serve the trace with the continuous-batching ``Scheduler`` — requests are
   admitted FIFO as slots and KV blocks free up, finished requests are
   evicted mid-flight, and their paged KV blocks are reclaimed immediately,
4. serve the *same* trace with classic static (gang) batching and compare
   tokens-per-forward-pass, next to the analytic prediction of
   ``repro.gpu.ContinuousBatchWorkload`` (the harmonic number of the batch
   size, under saturation),
5. check per-request parity: scheduling policy never changes what any
   individual request generates,
6. re-serve a shared-template trace with ``prefix_cache=True`` — prompts
   sharing a few-shot template reuse its KV blocks instead of recomputing
   them (with chunked prefill bounding per-iteration prompt work), and the
   generated tokens stay bit-identical to cache-off serving.

Run:  python examples/serve_continuous.py
"""

from __future__ import annotations

import numpy as np

from repro.core import TenderConfig, TenderQuantizer
from repro.data import calibration_samples, load_corpus
from repro.gpu import ContinuousBatchWorkload
from repro.models import TransformerRunner, get_language_model
from repro.serve import GenerationConfig, Scheduler

MAX_BATCH = 4


def build_trace(tokens: np.ndarray, num_requests: int, seed: int) -> list:
    """(prompt, budget, arrival) triples: Poisson arrivals, skewed lengths."""
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(scale=1.5, size=num_requests))
    trace = []
    for index in range(num_requests):
        start = (index * 17) % 300
        prompt = tokens[start : start + 5 + index % 6]
        budget = 32 if index % 5 == 0 else 3  # every 5th request is long
        trace.append((prompt, budget, float(arrivals[index])))
    return trace


def serve(runner, trace, policy: str, **scheduler_options):
    scheduler = Scheduler(
        runner,
        GenerationConfig(max_new_tokens=32),
        max_batch_size=MAX_BATCH,
        policy=policy,
        record_logits=False,
        **scheduler_options,
    )
    for prompt, budget, arrival in trace:
        scheduler.submit(prompt, max_new_tokens=budget, arrival_time=arrival)
    outputs = scheduler.run()
    return outputs, scheduler.stats


def demo_prefix_cache(runner, tokens: np.ndarray) -> None:
    """Serve a shared-template trace with and without the prefix cache."""
    template = tokens[:64]  # a shared few-shot template / system prompt
    trace = [
        (np.concatenate([template, tokens[300 + i * 23 : 312 + i * 23]]), 3, float(i))
        for i in range(10)
    ]
    cold_outputs, cold = serve(runner, trace, "continuous")
    warm_outputs, warm = serve(
        runner, trace, "continuous", prefix_cache=True, prefill_chunk=32
    )
    by_id = {output.request_id: output for output in cold_outputs}
    assert all(
        np.array_equal(output.generated, by_id[output.request_id].generated)
        for output in warm_outputs
    )
    print(
        f"\n  prefix cache: {cold.prefill_tokens} -> {warm.prefill_tokens} prompt "
        f"tokens prefilled ({warm.prefix_hit_rate():.0%} served from cache), "
        f"tokens bit-identical ✓"
    )


def main() -> None:
    print("loading checkpoint (trains on first use, then cached)...")
    weights = get_language_model("opt-6.7b-sim")
    train_tokens, _ = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    calibration = calibration_samples(train_tokens, seq_len=48, num_samples=4, seed=7)
    runner = TenderQuantizer(TenderConfig(bits=8, num_groups=8)).quantize(weights, calibration)

    trace = build_trace(train_tokens, num_requests=20, seed=3)
    total_tokens = sum(budget for _, budget, _ in trace)
    print(f"\nserving {len(trace)} Poisson arrivals ({total_tokens} tokens, batch {MAX_BATCH})")

    continuous_outputs, continuous = serve(runner, trace, "continuous")
    gang_outputs, gang = serve(runner, trace, "gang")

    print("\n  policy      forwards  tokens/forward  peak batch")
    for name, stats in [("continuous", continuous), ("static", gang)]:
        print(
            f"  {name:<11s} {stats.total_iterations:>8d}  "
            f"{stats.tokens_per_iteration():>14.2f}  {stats.peak_active:>10d}"
        )
    measured = gang.total_iterations / continuous.total_iterations
    analytic = ContinuousBatchWorkload(
        max_batch=MAX_BATCH, mean_new_tokens=total_tokens / len(trace),
        context=64, d_model=4096, d_ff=16384, num_heads=32, num_layers=32,
    ).speedup_over_static()
    print(f"\n  measured speedup : {measured:.2f}x")
    print(f"  analytic (H({MAX_BATCH}), saturated, memoryless lengths): {analytic:.2f}x")

    # Scheduling policy never changes what a request generates.
    by_id = {output.request_id: output for output in continuous_outputs}
    assert all(
        np.array_equal(output.generated, by_id[output.request_id].generated)
        for output in gang_outputs
    )
    print("\n  per-request outputs are identical under both policies ✓")

    sample = min(continuous_outputs, key=lambda output: output.request_id)
    print(
        f"\n  request 0: admitted at tick {sample.admitted_at:.0f}, finished at "
        f"tick {sample.finished_at:.0f} ({sample.finish_reason}), "
        f"continuation {np.array2string(sample.generated, separator=',')}"
    )

    demo_prefix_cache(runner, train_tokens)


if __name__ == "__main__":
    main()
