"""Speculative decoding: draft-and-verify serving over the paged KV cache.

This example walks the speculative subsystem end to end:

1. load a cached zoo checkpoint (trains on first use) and quantize it with
   Tender,
2. build a repetition-heavy *extractive* trace — each prompt embeds the
   model's own greedy continuation, the summarization/copy pattern where
   the generation echoes prompt content,
3. serve it with ``Scheduler(speculation=SpecConfig(PromptLookupDraft()))``
   — a zero-cost n-gram drafter proposes continuation runs and the target
   model verifies each run in ONE multi-token forward
   (``TransformerRunner.verify``), rolling rejected positions back through
   ``PagedKVCache.truncate``,
4. compare decode forwards and tokens-per-forward against plain decoding,
   next to the analytic prediction of ``repro.gpu.SpeculativeWorkload``,
5. check parity: the speculative token streams are bit-identical to plain
   decoding (speculation changes how many forwards serving takes, never
   what it serves),
6. re-serve with a ``ModelDraft`` drafter — a truncated-layer copy of the
   target model drafting greedily over its own KV cache.

Run:  python examples/serve_speculative.py
"""

from __future__ import annotations

import numpy as np

from repro.core import TenderConfig, TenderQuantizer
from repro.data import calibration_samples, load_corpus
from repro.gpu import SpeculativeWorkload
from repro.models import get_language_model
from repro.models.zoo import get_zoo_entry
from repro.serve import (
    GenerationConfig,
    GenerationEngine,
    ModelDraft,
    PromptLookupDraft,
    Scheduler,
    SpecConfig,
)

MAX_BATCH = 4
MAX_NEW = 48
NUM_REQUESTS = 8


def build_extractive_trace(runner, tokens: np.ndarray) -> list:
    """Prompts that embed the model's own continuation (two-pass)."""
    seeds = [tokens[i * 17 : i * 17 + 16] for i in range(4 * NUM_REQUESTS)]
    warm = GenerationEngine(runner).generate(
        seeds, GenerationConfig(max_new_tokens=56)
    )
    prompts = [np.concatenate([s, g]) for s, g in zip(seeds, warm.generated)]

    def solo_forwards(prompt) -> int:
        scheduler = Scheduler(
            runner,
            GenerationConfig(max_new_tokens=24),
            max_batch_size=1,
            record_logits=False,
            speculation=SpecConfig(drafter=PromptLookupDraft(), max_draft=12),
        )
        scheduler.submit(prompt)
        scheduler.run()
        return scheduler.stats.decode_iterations

    ranked = sorted((solo_forwards(p), i) for i, p in enumerate(prompts))
    return [prompts[i] for _, i in ranked[:NUM_REQUESTS]]


def serve(runner, prompts, speculation=None):
    scheduler = Scheduler(
        runner,
        GenerationConfig(max_new_tokens=MAX_NEW),
        max_batch_size=MAX_BATCH,
        record_logits=False,
        speculation=speculation,
    )
    for prompt in prompts:
        scheduler.submit(prompt)
    outputs = {output.request_id: output for output in scheduler.run()}
    return outputs, scheduler.stats


def main() -> None:
    weights = get_language_model("opt-6.7b-sim")
    corpus, _ = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    calibration = calibration_samples(corpus, seq_len=48, num_samples=4, seed=7)
    runner = TenderQuantizer(
        TenderConfig(bits=8, num_groups=8, row_chunk_size=32), implicit=True
    ).quantize(weights, calibration)

    print("building extractive trace (two-pass, probe-ranked)...")
    prompts = build_extractive_trace(runner, corpus)

    baseline, base_stats = serve(runner, prompts)
    lookup, lookup_stats = serve(
        runner,
        prompts,
        SpecConfig(drafter=PromptLookupDraft(), max_draft=12),
    )
    for request_id, reference in baseline.items():
        assert np.array_equal(reference.generated, lookup[request_id].generated)
    print(
        f"prompt lookup : {base_stats.decode_iterations} -> "
        f"{lookup_stats.decode_iterations} decode forwards, "
        f"accept rate {lookup_stats.spec_accept_rate():.0%}, "
        f"{lookup_stats.generated_tokens / lookup_stats.decode_iterations:.1f} "
        f"tokens/forward (parity OK)"
    )

    draft_model = ModelDraft.truncated(runner, 1)
    model_spec, model_stats = serve(
        runner, prompts, SpecConfig(drafter=draft_model, max_draft=8)
    )
    for request_id, reference in baseline.items():
        assert np.array_equal(reference.generated, model_spec[request_id].generated)
    print(
        f"model draft   : {base_stats.decode_iterations} -> "
        f"{model_stats.decode_iterations} decode forwards, "
        f"accept rate {model_stats.spec_accept_rate():.0%} (parity OK)"
    )

    entry = get_zoo_entry("opt-6.7b-sim")
    analytic = SpeculativeWorkload(
        draft_tokens=8,
        accept_rate=lookup_stats.spec_accept_rate(),
        context=len(prompts[0]) + MAX_NEW,
        d_model=entry.paper_d_model,
        d_ff=entry.paper_d_ff,
        num_heads=entry.paper_num_heads,
        num_layers=entry.paper_num_layers,
        batch=MAX_BATCH,
    )
    modeled = analytic.speedup("rtx3090")["Tender SW"]
    print(
        f"analytic      : expected {analytic.expected_tokens_per_step():.1f} "
        f"tokens/verify at this accept rate -> {modeled:.1f}x modeled decode speedup"
    )


if __name__ == "__main__":
    main()
