"""Quickstart: quantize a language model with Tender and compare to FP16.

This example walks the full public API in a few steps:

1. build a synthetic corpus and train a small decoder-only language model
   (the stand-in for the paper's OPT checkpoints),
2. inject channel-wise activation outliers (the structure that makes LLM
   activations hard to quantize),
3. calibrate Tender (channel decomposition + per-chunk biases and scales) on a
   handful of calibration sequences,
4. evaluate perplexity of the FP baseline, naive INT8/INT4 per-tensor
   quantization, and Tender INT8/INT4,
5. serve a batch of ragged prompts through the KV-cached generation engine
   (``repro.serve``) with both the FP and the Tender runner — incremental
   decoding reproduces the full-sequence logits exactly, so the two engines
   emit the same continuations whenever Tender tracks the FP model.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import SchemeRequest, build_runner
from repro.core import TenderConfig, TenderQuantizer
from repro.data import calibration_samples, load_corpus
from repro.eval import evaluate_perplexity
from repro.models import TransformerRunner, extract_weights, inject_outliers, train_language_model
from repro.nn import TransformerConfig
from repro.serve import GenerationConfig, GenerationEngine


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data and a small trained model.
    # ------------------------------------------------------------------
    corpus = load_corpus("wiki", vocab_size=512, num_tokens=30_000)
    train_tokens, eval_tokens = corpus.split()
    config = TransformerConfig(
        vocab_size=512, d_model=64, num_heads=4, num_layers=2, d_ff=192,
        max_seq_len=128, activation="relu", seed=0,
    )
    print("training a small decoder-only LM (a minute or less)...")
    model, result = train_language_model(config, train_tokens, steps=200, batch_size=8, seq_len=48)
    print(f"  final training loss: {result.final_loss:.2f}")

    # ------------------------------------------------------------------
    # 2. Give it LLM-like activation outliers (function-preserving).
    # ------------------------------------------------------------------
    weights = inject_outliers(
        extract_weights(model),
        num_scale_channels=2, scale_magnitude=80.0,
        num_shift_channels=2, shift_magnitude=40.0, seed=0,
    )

    # ------------------------------------------------------------------
    # 3. Calibrate Tender.
    # ------------------------------------------------------------------
    calibration = calibration_samples(train_tokens, seq_len=64, num_samples=16)
    tender_int8 = TenderQuantizer(TenderConfig(bits=8, num_groups=8, row_chunk_size=32))
    runner_int8 = tender_int8.quantize(weights, calibration)
    tender_int4 = TenderQuantizer(TenderConfig(bits=4, num_groups=12, row_chunk_size=32))
    runner_int4 = tender_int4.quantize(weights, calibration)

    # ------------------------------------------------------------------
    # 4. Evaluate everything.
    # ------------------------------------------------------------------
    def perplexity(runner) -> float:
        return evaluate_perplexity(runner, eval_tokens, seq_len=64, max_windows=8)

    fp_runner = TransformerRunner(weights)
    naive8 = build_runner("per-tensor", SchemeRequest(weights=weights, calibration=calibration, bits=8))
    naive4 = build_runner("per-tensor", SchemeRequest(weights=weights, calibration=calibration, bits=4))

    print("\nperplexity (lower is better, random would be ~512):")
    print(f"  FP16 baseline          : {perplexity(fp_runner):8.2f}")
    print(f"  INT8 per-tensor        : {perplexity(naive8):8.2f}")
    print(f"  INT8 Tender            : {perplexity(runner_int8):8.2f}")
    print(f"  INT4 per-tensor        : {perplexity(naive4):8.2f}")
    print(f"  INT4 Tender            : {perplexity(runner_int4):8.2f}")
    print("\nTender INT8 should track the FP16 baseline, and Tender INT4 should stay")
    print("far below the per-tensor INT4 blow-up — the paper's Table II in miniature.")

    # ------------------------------------------------------------------
    # 5. Batched generation through the KV-cached engine.
    # ------------------------------------------------------------------
    # Ragged prompts are fine: the engine right-pads, prefills the cache in
    # one pass, and decodes one token per request per step.  Greedy decoding
    # through the cache is exactly equivalent to re-running the full forward
    # at every step — just ~seq-times cheaper per token.
    prompts = [train_tokens[:8], train_tokens[100:105], train_tokens[200:212]]
    generation = GenerationConfig(max_new_tokens=12)   # top_k=0 -> greedy
    print("\ngenerating 12 tokens for 3 ragged prompts (greedy, KV-cached):")
    for label, runner in [("FP16", fp_runner), ("INT8 Tender", runner_int8)]:
        result = GenerationEngine(runner).generate(prompts, generation)
        continuations = " | ".join(
            np.array2string(tokens, separator=",") for tokens in result.generated
        )
        print(f"  {label:12s}: {continuations}")
    sampled = GenerationEngine(runner_int8).generate(
        prompts, GenerationConfig(max_new_tokens=12, top_k=8, temperature=1.2, seed=0)
    )
    print(f"  top-k sample : {np.array2string(sampled.generated[0], separator=',')}")
    print("\nMatching FP16/Tender prefixes show INT8 Tender preserving the greedy")
    print("argmax; where they diverge, quantization flipped a near-tie (the small")
    print("perplexity gap above). Top-k adds seeded, replayable diversity.")
    print("\nNext: examples/serve_continuous.py serves a Poisson arrival trace")
    print("through the continuous-batching scheduler (repro.serve.Scheduler).")


if __name__ == "__main__":
    main()
